"""EXP-11 — DML through the statement API: batched INSERT and indexed UPDATE.

Two claims of the unified statement API are measured:

* **batched INSERT** — ``Cursor.executemany`` parses/analyzes the INSERT
  once, resolves bindings per row and feeds one bulk
  :meth:`~repro.datamodel.database.Database.create_many` maintenance pass;
  it must beat the classic per-call ``Database.create`` loop (which pays
  schema lookup, validation setup, partition and index-target resolution
  per object) on wall-clock throughput;
* **indexed UPDATE … WHERE** — the router plans mutation predicates
  through the full optimizer, so an ``UPDATE … WHERE`` over a property
  with a hash index resolves its targets via ``index_eq_scan`` instead of
  scanning the extension.  Logical work counters (property reads +
  extension scans, deterministic) quantify the gap against the naive
  full-scan lowering of the same statement.

Acceptance: executemany INSERT throughput ≥ ``MIN_INSERT_SPEEDUP`` × the
create loop; the indexed UPDATE's WHERE work is ≥ ``MIN_WORK_RATIO``×
smaller than the full scan's; ``explain`` of the indexed UPDATE names an
index access path.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp11_dml.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp11_dml.py
"""

from __future__ import annotations

import sys
import time

from conftest import SCALING_SIZES, bench_seed
from repro import connect
from repro.bench import format_table, standalone_main
from repro.workloads import generate_document_database

#: executemany INSERT must deliver at least this multiple of the per-call
#: Database.create loop's throughput (same logical effect, bulk maintenance)
MIN_INSERT_SPEEDUP = 1.05

#: the indexed UPDATE's WHERE-resolution work must be at least this many
#: times smaller than the naive full scan's
MIN_WORK_RATIO = 5.0

INSERT_STATEMENT = "INSERT INTO Document (title, author) VALUES (:title, :author)"
UPDATE_STATEMENT = ("UPDATE Paragraph p SET content = :content "
                    "WHERE p.number == :number")


def _insert_rows(n_rows: int) -> list[dict]:
    return [{"title": f"exp11 doc {i}", "author": f"author {i % 7}"}
            for i in range(n_rows)]


def _fresh_database():
    # DML mutates: never reuse the conftest-cached databases.
    return generate_document_database(n_documents=SCALING_SIZES[0],
                                      seed=bench_seed())


def _measure_insert(n_rows: int, rounds: int) -> tuple[float, float]:
    """Best wall-clock seconds of the create loop and of executemany."""
    rows = _insert_rows(n_rows)
    loop_best = float("inf")
    bulk_best = float("inf")
    for _ in range(max(rounds, 1)):
        loop_db = _fresh_database()
        started = time.perf_counter()
        for row in rows:
            loop_db.create("Document", **row)
        loop_best = min(loop_best, time.perf_counter() - started)

        bulk_db = _fresh_database()
        cursor = connect(bulk_db).cursor()
        started = time.perf_counter()
        cursor.executemany(INSERT_STATEMENT, rows)
        bulk_best = min(bulk_best, time.perf_counter() - started)
        assert cursor.rowcount == n_rows
        assert bulk_db.object_count() == loop_db.object_count()
    return loop_best, bulk_best


def _where_work(connection, optimize: bool) -> dict[str, float]:
    """Logical work of one UPDATE's WHERE resolution + application.

    The UPDATE only rewrites ``content``, so running both variants against
    one database leaves the WHERE selectivity (``number == 3``) unchanged.
    """
    database = connection.database
    before = database.work_snapshot()
    result = connection.router.execute(
        UPDATE_STATEMENT,
        {"content": "rewritten by exp11", "number": 3},
        optimize=optimize)
    after = database.work_snapshot()
    return {
        "rows": result.rowcount,
        "property_reads": after["property_reads"] - before["property_reads"],
        "extension_scans": (after["extension_scans"]
                            - before["extension_scans"]),
        "index_lookups": after["index_lookups"] - before["index_lookups"],
    }


def run_cases(quick: bool = False) -> list[dict]:
    n_rows = 2_000 if quick else 10_000
    rounds = 2 if quick else 3
    loop_seconds, bulk_seconds = _measure_insert(n_rows, rounds)

    cases = [
        {"case": "insert-create-loop", "rows": n_rows,
         "seconds": round(loop_seconds, 4),
         "rows_per_second": round(n_rows / loop_seconds, 1)},
        {"case": "insert-executemany", "rows": n_rows,
         "seconds": round(bulk_seconds, 4),
         "rows_per_second": round(n_rows / bulk_seconds, 1)},
    ]

    connection = connect(_fresh_database())
    connection.execute("CREATE INDEX ON Paragraph(number)")
    where_plan = connection.explain(UPDATE_STATEMENT)
    indexed = _where_work(connection, optimize=True)
    fullscan = _where_work(connection, optimize=False)
    assert indexed["rows"] == fullscan["rows"], \
        "indexed and full-scan UPDATE disagree on affected rows"
    cases.append({"case": "update-indexed", "rows": indexed["rows"],
                  "property_reads": indexed["property_reads"],
                  "extension_scans": indexed["extension_scans"],
                  "index_lookups": indexed["index_lookups"]})
    cases.append({"case": "update-fullscan", "rows": fullscan["rows"],
                  "property_reads": fullscan["property_reads"],
                  "extension_scans": fullscan["extension_scans"],
                  "index_lookups": fullscan["index_lookups"]})
    cases.append({"case": "update-explain",
                  "uses_index_path": "index_eq_scan" in where_plan})
    return cases


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    insert_speedup = (by_case["insert-executemany"]["rows_per_second"]
                      / max(by_case["insert-create-loop"]["rows_per_second"],
                            1e-9))
    indexed_work = (by_case["update-indexed"]["property_reads"]
                    + by_case["update-indexed"]["extension_scans"])
    fullscan_work = (by_case["update-fullscan"]["property_reads"]
                     + by_case["update-fullscan"]["extension_scans"])
    return {
        "insert_speedup": round(insert_speedup, 2),
        "insert_speedup_target": MIN_INSERT_SPEEDUP,
        "update_work_ratio": round(fullscan_work / max(indexed_work, 1), 2),
        "update_work_ratio_target": MIN_WORK_RATIO,
        "update_uses_index_path": by_case["update-explain"]["uses_index_path"],
    }


def check(record: dict) -> str | None:
    if record["insert_speedup"] < MIN_INSERT_SPEEDUP:
        return (f"executemany INSERT speedup {record['insert_speedup']}x is "
                f"below the {MIN_INSERT_SPEEDUP}x target")
    if record["update_work_ratio"] < MIN_WORK_RATIO:
        return (f"indexed UPDATE work ratio {record['update_work_ratio']}x "
                f"is below the {MIN_WORK_RATIO}x target")
    if not record["update_uses_index_path"]:
        return "explain of the indexed UPDATE shows no index access path"
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp11_executemany_insert_beats_create_loop(benchmark):
    """Acceptance: batched INSERT ≥ the per-call create loop's throughput."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-11 DML throughput (quick):")
    print(format_table(cases))
    print(f"insert speedup: {summary['insert_speedup']}x, "
          f"update work ratio: {summary['update_work_ratio']}x")
    assert summary["insert_speedup"] >= MIN_INSERT_SPEEDUP


def test_exp11_indexed_update_avoids_the_full_scan(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    assert summary["update_uses_index_path"]
    assert summary["update_work_ratio"] >= MIN_WORK_RATIO


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp11-dml", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
