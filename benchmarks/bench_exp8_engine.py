"""EXP-8 — Compiled pipelined engine vs the seed interpreter.

The seed executor interpreted physical plans: every operator materialized
its input into a list and ``evaluate()`` re-walked the expression tree per
row.  The production engine (:mod:`repro.physical.executor`) compiles every
expression once per plan and streams rows through generator operators.
This experiment executes *identical physical plans* under both engines on
the exp1/exp2/exp5 workloads and reports the wall-clock speedup; the
logical work counters are engine-independent, so any difference is pure
engine overhead.

Expected shape: ≥2× on the scan-and-filter heavy exp2 naive plan (per-row
expression overhead dominates), smaller but consistent wins on plans whose
time is spent inside method implementations (exp5's nested-loop join).

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp8_engine.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp8_engine.py
"""

from __future__ import annotations

import sys

from conftest import DEFAULT_SIZE, SCALING_SIZES, semantic_session
from repro.bench import best_of as _best_of
from repro.bench import format_table, standalone_main
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.naive import naive_implementation
from repro.workloads import motivating_query, same_document_join_query

#: the exp2 acceptance threshold: compiled must be at least this much faster
#: than the seed interpreter on the exp2 naive workload
EXP2_MIN_SPEEDUP = 2.0


def _physical_plan(session, query_text: str, optimize: bool):
    translation = session.translate(query_text)
    if optimize:
        return session.optimizer.optimize(translation.plan).best_plan
    return naive_implementation(translation.plan)


def _measure_case(name: str, n_documents: int, query_text: str,
                  optimize: bool, rounds: int) -> dict:
    session = semantic_session(n_documents)
    database = session.database
    plan = _physical_plan(session, query_text, optimize)

    interpreted_rows = execute_plan_interpreted(plan, database)
    compiled_rows = execute_plan(plan, database)
    assert compiled_rows == interpreted_rows, \
        f"{name}: engines disagree on the result rows"

    interpreted = _best_of(lambda: execute_plan_interpreted(plan, database),
                           rounds)
    compiled = _best_of(lambda: execute_plan(plan, database), rounds)
    return {
        "case": name,
        "n_documents": n_documents,
        "optimized_plan": optimize,
        "rows": len(compiled_rows),
        "interpreted_ms": round(interpreted * 1000, 3),
        "compiled_ms": round(compiled * 1000, 3),
        "speedup": round(interpreted / compiled, 2) if compiled > 0 else float("inf"),
    }


def run_cases(quick: bool = False) -> list[dict]:
    """Measure every workload case and return the records."""
    rounds = 3 if quick else 7
    exp2_size = SCALING_SIZES[1] if quick else SCALING_SIZES[-1]
    join_size = 4 if quick else 8
    motivating = motivating_query().text
    join_query = same_document_join_query().text
    return [
        _measure_case("exp1-motivating-naive", DEFAULT_SIZE, motivating,
                      optimize=False, rounds=rounds),
        _measure_case("exp1-motivating-optimized", DEFAULT_SIZE, motivating,
                      optimize=True, rounds=rounds),
        _measure_case("exp2-speedup-naive", exp2_size, motivating,
                      optimize=False, rounds=rounds),
        _measure_case("exp2-speedup-optimized", exp2_size, motivating,
                      optimize=True, rounds=rounds),
        _measure_case("exp5-join-naive", join_size, join_query,
                      optimize=False, rounds=max(rounds // 2, 2)),
        _measure_case("exp5-join-optimized", join_size, join_query,
                      optimize=True, rounds=rounds),
    ]


def summarize(cases: list[dict]) -> dict:
    exp2 = next(case for case in cases if case["case"] == "exp2-speedup-naive")
    return {
        "exp2_speedup": exp2["speedup"],
        "exp2_speedup_target": EXP2_MIN_SPEEDUP,
    }


def check(record: dict) -> str | None:
    if record["exp2_speedup"] < EXP2_MIN_SPEEDUP:
        return (f"exp2 speedup {record['exp2_speedup']}x is below the "
                f"{EXP2_MIN_SPEEDUP}x target")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp8_compiled_engine_at_least_2x_on_exp2(benchmark):
    """Acceptance: ≥2× wall-clock on the exp2 speedup workload."""
    session = semantic_session(SCALING_SIZES[-1])
    database = session.database
    plan = _physical_plan(session, motivating_query().text, optimize=False)

    assert execute_plan(plan, database) == execute_plan_interpreted(plan, database)
    interpreted = _best_of(lambda: execute_plan_interpreted(plan, database), 7)
    compiled = benchmark.pedantic(lambda: execute_plan(plan, database),
                                  rounds=7, iterations=1)
    compiled_best = _best_of(lambda: execute_plan(plan, database), 7)
    del compiled  # pedantic returns the last call's result, timing is separate

    speedup = interpreted / compiled_best
    print(f"\nEXP-8 exp2 naive plan: interpreted={interpreted * 1000:.2f}ms "
          f"compiled={compiled_best * 1000:.2f}ms speedup={speedup:.2f}x")
    assert speedup >= EXP2_MIN_SPEEDUP


def test_exp8_engines_agree_on_all_workload_cases(benchmark):
    cases = run_cases(quick=True)  # row equality is asserted per case
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nEXP-8 engine comparison (quick):")
    print(format_table(cases))
    assert all(case["speedup"] > 0 for case in cases)


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp8-engine", run_cases,
                           description=__doc__.splitlines()[0],
                           summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
