"""EXP-6 — General vs restricted algebra (Section 6.1).

The paper restricts operator parameters to atomic expressions so that the
Volcano rule matcher can work, and argues the restricted algebra has the same
expressive power: expression composition becomes operator composition.  This
experiment normalizes every workload query from the general to the restricted
algebra, executes both forms, verifies the results coincide, and measures the
overhead of the decomposition (operator count and execution time).

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp6_restricted_algebra.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

import pytest

from conftest import SCALING_SIZES, semantic_session
from repro.algebra.normalize import normalize
from repro.algebra.operators import operator_size
from repro.bench import format_table, standalone_main
from repro.physical.evaluator import make_hashable
from repro.physical.executor import execute_plan
from repro.physical.naive import naive_implementation
from repro.physical.restricted_exec import execute_restricted
from repro.workloads import document_workload

#: queries whose ACCESS clause the restricted normalizer supports
#: (tuple constructors are excluded by design, see normalize.py)
QUERIES = [q for q in document_workload()
           if q.name not in ("Q-same-document", "Q-tuple-access")]


@pytest.mark.parametrize("query", QUERIES, ids=[q.name for q in QUERIES])
def test_exp6_restricted_equals_general(benchmark, query):
    session = semantic_session(SCALING_SIZES[0])
    translation = session.translate(query.text)
    restricted = normalize(translation.plan)

    general_rows = execute_plan(naive_implementation(translation.plan),
                                session.database)
    restricted_rows = benchmark.pedantic(
        lambda: execute_restricted(restricted, session.database),
        rounds=1, iterations=1)

    def projected(rows):
        return {make_hashable(row.get(translation.output_ref)) for row in rows}

    assert projected(general_rows) == projected(restricted_rows)

    print(f"\nEXP-6 {query.name}: general {operator_size(translation.plan)} "
          f"operators -> restricted {operator_size(restricted)} operators")


def test_exp6_operator_blowup_summary(benchmark):
    """Report the operator-count blow-up caused by the decomposition."""
    session = semantic_session(SCALING_SIZES[0])
    rows = []
    for query in QUERIES:
        translation = session.translate(query.text)
        restricted = normalize(translation.plan)
        rows.append({
            "query": query.name,
            "general_ops": operator_size(translation.plan),
            "restricted_ops": operator_size(restricted),
            "blowup": round(operator_size(restricted)
                            / operator_size(translation.plan), 2),
        })
    benchmark.pedantic(
        lambda: [normalize(session.translate(q.text).plan) for q in QUERIES],
        rounds=3, iterations=1)

    print("\nEXP-6 operator counts (general vs restricted):")
    print(format_table(rows))
    assert all(row["restricted_ops"] >= row["general_ops"] for row in rows)


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    session = semantic_session(SCALING_SIZES[0])
    queries = QUERIES[:3] if quick else QUERIES
    cases = []
    for query in queries:
        translation = session.translate(query.text)
        restricted = normalize(translation.plan)
        general_rows = execute_plan(naive_implementation(translation.plan),
                                    session.database)
        restricted_rows = execute_restricted(restricted, session.database)

        def projected(rows):
            return {make_hashable(row.get(translation.output_ref))
                    for row in rows}

        cases.append({
            "case": query.name,
            "rows": len(general_rows),
            "results_match": projected(general_rows) == projected(restricted_rows),
            "general_ops": operator_size(translation.plan),
            "restricted_ops": operator_size(restricted),
            "blowup": round(operator_size(restricted)
                            / operator_size(translation.plan), 2),
        })
    return cases


def check(record: dict) -> str | None:
    for case in record["cases"]:
        if not case["results_match"]:
            return f"{case['case']}: restricted algebra changed the result"
        if case["restricted_ops"] < case["general_ops"]:
            return f"{case['case']}: restricted form lost operators"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp6-restricted-algebra", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
