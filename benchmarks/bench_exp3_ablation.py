"""EXP-3 — Ablation of the four knowledge kinds (Section 4.2).

The paper classifies semantic knowledge into expression equivalences,
condition equivalences, condition implications and query↔method-call
equivalences.  This experiment disables each kind (by rule tag) and measures
the work of the plan the remaining optimizer chooses for the motivating
query, demonstrating that each kind contributes and that the full knowledge
base performs best.

Expected shape:

* full knowledge → plan PQ (two external calls, minimal work);
* without the query↔method equivalence (E5) → contains_string is evaluated
  per candidate paragraph, but the candidate set is already small thanks to
  E1-E4;
* without the condition equivalences (E2-E4) → the title condition cannot be
  turned into an index lookup + inverse-link navigation, so the plan falls
  back to scanning;
* without any semantic knowledge → the naive-shaped plan.
Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp3_ablation.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

import pytest

from conftest import DEFAULT_SIZE, SCALING_SIZES, semantic_session
from repro.bench import format_table, measure_query, standalone_main
from repro.workloads import motivating_query

QUERY = motivating_query().text

ABLATIONS = [
    ("full-knowledge", ()),
    ("no-expression-equivalences", ("semantic:expression",)),
    ("no-condition-equivalences", ("semantic:condition",)),
    ("no-query-method-equivalence", ("semantic:query-method",)),
    ("no-implications", ("semantic:implication",)),
    ("no-semantics-at-all", ("semantic",)),
]


@pytest.mark.parametrize("label,excluded", ABLATIONS,
                         ids=[label for label, _ in ABLATIONS])
def test_exp3_ablation_variant(benchmark, label, excluded):
    session = semantic_session(DEFAULT_SIZE, exclude_tags=tuple(excluded))
    measurement = benchmark.pedantic(
        lambda: measure_query(session, QUERY, label=label),
        rounds=1, iterations=1)
    print(f"\nEXP-3 {label}: cost_units={measurement.cost_units:.1f} "
          f"external_calls={measurement.external_calls:.0f}")
    assert measurement.rows >= 1


def test_exp3_full_knowledge_is_best(benchmark):
    """The full knowledge base yields the cheapest plan; every ablation is at
    least as expensive, and removing everything is the most expensive."""
    measurements = {}
    reference_rows = None
    for label, excluded in ABLATIONS:
        session = semantic_session(DEFAULT_SIZE, exclude_tags=tuple(excluded))
        measurement = measure_query(session, QUERY, label=label)
        measurements[label] = measurement
        if reference_rows is None:
            reference_rows = measurement.rows
        assert measurement.rows == reference_rows, \
            "ablation must never change query results"

    benchmark.pedantic(
        lambda: measure_query(semantic_session(DEFAULT_SIZE), QUERY, "full"),
        rounds=1, iterations=1)

    print("\nEXP-3 ablation summary:")
    print(format_table([m.as_row() for m in measurements.values()],
                       columns=["label", "rows", "cost_units",
                                "method_calls", "external_calls"]))

    full = measurements["full-knowledge"].cost_units
    none = measurements["no-semantics-at-all"].cost_units
    cheapest = min(m.cost_units for m in measurements.values())
    # The full knowledge base is (essentially) the cheapest variant — the
    # cost model's choice may differ from the measured work by a small
    # constant (see EXPERIMENTS.md), hence the 1.5x tolerance — and removing
    # all semantic knowledge is by far the most expensive.
    assert full <= cheapest * 1.5 + 1e-9
    assert none >= max(m.cost_units for m in measurements.values()) - 1e-9
    assert none > full * 10
    # Removing the query<->method equivalence must hurt: contains_string is
    # then evaluated per candidate paragraph.
    assert (measurements["no-query-method-equivalence"].external_calls
            > measurements["full-knowledge"].external_calls)


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    size = SCALING_SIZES[0] if quick else DEFAULT_SIZE
    cases = []
    for label, excluded in ABLATIONS:
        session = semantic_session(size, exclude_tags=tuple(excluded))
        measurement = measure_query(session, QUERY, label=label)
        cases.append({
            "case": label,
            "n_documents": size,
            "rows": measurement.rows,
            "cost_units": round(measurement.cost_units, 1),
            "method_calls": int(measurement.method_calls),
            "external_calls": int(measurement.external_calls),
        })
    return cases


def check(record: dict) -> str | None:
    by_case = {case["case"]: case for case in record["cases"]}
    if len({case["rows"] for case in record["cases"]}) != 1:
        return "ablations changed query results"
    full = by_case["full-knowledge"]["cost_units"]
    none = by_case["no-semantics-at-all"]["cost_units"]
    if not none > full * 10:
        return "removing all semantic knowledge is not >10x more expensive"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp3-ablation", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
