"""EXP-13 — join-order enumeration and adaptive feedback re-optimization.

Two claims, one skewed three-class star schema
(``Order(status, region)`` / ``Shipment(region)`` / ``Region(name, kind)``):

**Enumeration.**  The star query arrives in a pathological parse order::

    ACCESS o FROM o IN Order, s IN Shipment, r IN Region
    WHERE o.status == 'urgent' AND o.region == r.name
      AND s.region == r.name AND r.kind == 'rare'

``Order`` and ``Shipment`` only relate *through* ``Region``, so the parse
order's first join is a bare cross product — and the rule set deliberately
has no join-associativity transformation, so exploration alone cannot
regroup it.  The join-graph enumerator (Selinger DP over the equi-join
edges) seeds the search with a connected order that filters first and
joins through the hub; acceptance is an ``MIN_SPEEDUP``× wall-clock win
over the parse-order plan with identical results.

**Feedback.**  A ``QueryService`` plans the same query against fresh
ANALYZE statistics, then the data drifts (many regions flip to the
'rare' kind — kept below the staleness fraction, so the statistics stay
nominally *fresh* but factually wrong).  The first post-drift execution
runs profiled, the estimate/actual divergence writes a correction into
the statistics catalog, the plan cache evicts, and the next execution
replans against the observed selectivity; acceptance is the
``plans_reoptimized``/``feedback_evictions`` counters firing and the
replanned execution doing measurably less work (logical work counters)
than the stale plan's post-drift execution.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp13_joinorder.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp13_joinorder.py
"""

from __future__ import annotations

import random
import sys

from conftest import bench_seed
from repro.bench import best_of, format_table, standalone_main
from repro.datamodel.database import Database
from repro.datamodel.schema import ClassDef, PropertyDef, Schema
from repro.datamodel.types import STRING
from repro.optimizer.search import OptimizerOptions
from repro.physical.executor import execute_plan
from repro.service.service import QueryService
from repro.session import Session

#: the enumerated join order must beat the parse order by this factor
MIN_SPEEDUP = 3.0

#: the replanned execution must cut logical work by at least this factor
MIN_FEEDBACK_GAIN = 1.2

#: one in SKEW orders is 'urgent' / one in SKEW regions is 'rare' — exact
#: counts (not sampled) so the post-drift estimate/actual ratio is stable
SKEW = 50

QUERY = ("ACCESS o FROM o IN Order, s IN Shipment, r IN Region "
         "WHERE o.status == 'urgent' AND o.region == r.name "
         "AND s.region == r.name AND r.kind == 'rare'")


def _star_database(n_orders: int, n_regions: int, seed: int) -> Database:
    """Order/Shipment star around a Region hub, skewed on both filters."""
    schema = Schema("order-star")
    for name, props in (("Order", ("status", "region")),
                        ("Shipment", ("region",)),
                        ("Region", ("name", "kind"))):
        class_def = ClassDef(name=name)
        for prop in props:
            class_def.add_property(PropertyDef(prop, STRING))
        schema.add_class(class_def)

    database = Database(schema, name=f"star[{n_orders}]")
    rng = random.Random(seed)
    regions = [f"R{i:04d}" for i in range(n_regions)]
    database.create_many("Order", [
        {"status": ("urgent" if i < n_orders // SKEW else "open"),
         "region": regions[i % n_regions]} for i in range(n_orders)])
    database.create_many("Shipment", [{"region": rng.choice(regions)}
                                      for _ in range(3 * n_orders)])
    database.create_many("Region", [
        {"name": name, "kind": ("rare" if i < n_regions // SKEW else "common")}
        for i, name in enumerate(regions)])
    database.create_hash_index("Region", "name")
    return database


def _drift(database: Database, n_orders: int, n_regions: int) -> None:
    """Flip ~23% of each class toward the rare values — enough for a >10x
    estimate/actual divergence on both filters, yet under the 25% staleness
    fraction, so the ANALYZE statistics stay *fresh* while badly wrong."""
    for class_name, prop, value, budget in (
            ("Order", "status", "urgent", int(0.23 * n_orders)),
            ("Region", "kind", "rare", int(0.23 * n_regions))):
        flips = [oid for oid in database.extension(class_name)
                 if database.get(oid).get(prop) != value][:budget]
        for oid in flips:
            database.update(oid, **{prop: value})


def _work_reads(work: dict) -> float:
    """One scalar 'logical work' measure of an execution: property reads
    plus index lookups (both deterministic, unlike wall-clock)."""
    return work.get("property_reads", 0.0) + work.get("index_lookups", 0.0)


def run_cases(quick: bool = False) -> list[dict]:
    n_orders = 600 if quick else 1_500
    n_regions = 100 if quick else 250
    rounds = 3 if quick else 5
    seed = bench_seed()

    # ------------------------------------------------------------------
    # phase 1: parse order vs enumerated order
    # ------------------------------------------------------------------
    database = _star_database(n_orders, n_regions, seed)
    database.analyze()
    parse_session = Session(database,
                            options=OptimizerOptions(join_seeding=False))
    seeded_session = Session(database)

    parse_order = parse_session.optimize(QUERY)
    enumerated = seeded_session.optimize(QUERY)
    assert enumerated.join_order is not None, \
        "the join-graph enumerator produced no order for the star query"

    parse_rows = execute_plan(parse_order.best_plan, database)
    seeded_rows = execute_plan(enumerated.best_plan, database)
    assert {row["o"] for row in parse_rows} == \
        {row["o"] for row in seeded_rows}, \
        "parse-order and enumerated plans disagree on the result set"

    parse_seconds = best_of(
        lambda: execute_plan(parse_order.best_plan, database), rounds)
    seeded_seconds = best_of(
        lambda: execute_plan(enumerated.best_plan, database), rounds)

    # ------------------------------------------------------------------
    # phase 2: drift → feedback correction → replan
    # ------------------------------------------------------------------
    # Fixed sizes regardless of --quick: this phase demonstrates a plan
    # *flip* (the pre-drift optimum nests a loop over Shipment, which is
    # only optimal while 'urgent'/'rare' stay rare), so it needs the skew
    # regime, not scale.
    n_orders, n_regions = 600, 100
    service_db = _star_database(n_orders, n_regions, seed + 1)
    service = QueryService(service_db)
    service.execute("ANALYZE")
    service.execute(QUERY)  # profiled first execution, estimates on target

    _drift(service_db, n_orders, n_regions)

    stale_result = service.execute(QUERY)  # profiled, detects divergence
    stale_work = _work_reads(stale_result.work)

    replanned_result = None
    for _ in range(3):  # the eviction lands on the next lookup
        candidate = service.execute(QUERY)
        if service.metrics.snapshot()["plans_reoptimized"] >= 1:
            replanned_result = candidate
            break
    assert replanned_result is not None, \
        "feedback never triggered a replan after drift"
    assert replanned_result.value_set() == stale_result.value_set(), \
        "feedback replanning changed the result set"
    replanned_work = _work_reads(replanned_result.work)
    snapshot = service.metrics.snapshot()

    return [
        {"case": "parse-order", "orders": n_orders,
         "rows": len(parse_rows),
         "estimated_cost": round(parse_order.best_cost.cost, 1),
         "seconds": round(parse_seconds, 5)},
        {"case": "enumerated", "orders": n_orders,
         "rows": len(seeded_rows),
         "join_order": enumerated.join_order.describe(),
         "estimated_cost": round(enumerated.best_cost.cost, 1),
         "seconds": round(seeded_seconds, 5)},
        {"case": "feedback-stale-plan", "rows": len(stale_result.rows),
         "work_reads": round(stale_work, 1)},
        {"case": "feedback-replanned", "rows": len(replanned_result.rows),
         "work_reads": round(replanned_work, 1),
         "plans_reoptimized": snapshot["plans_reoptimized"],
         "feedback_evictions": snapshot["feedback_evictions"],
         "corrections": service_db.stats_catalog.correction_count()},
    ]


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    parse_order = by_case["parse-order"]
    enumerated = by_case["enumerated"]
    stale = by_case["feedback-stale-plan"]
    replanned = by_case["feedback-replanned"]
    return {
        "speedup": round(parse_order["seconds"]
                         / max(enumerated["seconds"], 1e-9), 2),
        "speedup_target": MIN_SPEEDUP,
        "join_order": enumerated["join_order"],
        "feedback_work_gain": round(stale["work_reads"]
                                    / max(replanned["work_reads"], 1e-9), 2),
        "feedback_gain_target": MIN_FEEDBACK_GAIN,
        "plans_reoptimized": replanned["plans_reoptimized"],
        "feedback_evictions": replanned["feedback_evictions"],
        "corrections": replanned["corrections"],
    }


def check(record: dict) -> str | None:
    if record["speedup"] < MIN_SPEEDUP:
        return (f"enumerated join order speedup {record['speedup']}x is "
                f"below the {MIN_SPEEDUP}x target")
    if record["plans_reoptimized"] < 1:
        return "feedback never replanned after drift"
    if record["feedback_evictions"] < 1:
        return "feedback never evicted the stale plan"
    if record["corrections"] < 1:
        return "no statistics correction was recorded"
    if record["feedback_work_gain"] < MIN_FEEDBACK_GAIN:
        return (f"replanned execution work gain "
                f"{record['feedback_work_gain']}x is below the "
                f"{MIN_FEEDBACK_GAIN}x target")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp13_enumerated_order_beats_parse_order(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-13 join-order enumeration + feedback (quick):")
    print(format_table(cases))
    print(f"speedup: {summary['speedup']}x via {summary['join_order']}")
    assert summary["speedup"] >= MIN_SPEEDUP


def test_exp13_feedback_replan_cuts_work(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    assert summary["plans_reoptimized"] >= 1
    assert summary["feedback_evictions"] >= 1
    assert summary["feedback_work_gain"] >= MIN_FEEDBACK_GAIN


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp13-joinorder", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
