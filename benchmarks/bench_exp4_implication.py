"""EXP-4 — Condition implications and precomputed information (Section 4.2).

The paper's example: ``p->wordCount() > 500 ⇒ p IS-IN
p->document().largeParagraphs`` lets the optimizer add a redundant but cheap
restriction based on the precomputed ``largeParagraphs`` property, avoiding
the expensive ``wordCount`` call for most paragraphs.

Measured: the work of the word-count query with and without the implication
knowledge.  Expected shape: with the implication, the number of wordCount
invocations drops from "all paragraphs" to "members of largeParagraphs".

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp4_implication.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

from conftest import DEFAULT_SIZE, SCALING_SIZES, semantic_session
from repro.bench import format_table, measure_query, speedup, standalone_main
from repro.workloads import large_paragraph_query

QUERY = large_paragraph_query().text


def test_exp4_implication_reduces_wordcount_calls(benchmark):
    with_implication = semantic_session(DEFAULT_SIZE)
    without_implication = semantic_session(
        DEFAULT_SIZE, exclude_tags=("semantic:implication",))

    baseline = measure_query(without_implication, QUERY, "without-implication")
    baseline_wordcount = without_implication.database.statistics.calls_of(
        "Paragraph", "wordCount")
    optimized = benchmark.pedantic(
        lambda: measure_query(with_implication, QUERY, "with-implication"),
        rounds=3, iterations=1)
    optimized_wordcount = with_implication.database.statistics.calls_of(
        "Paragraph", "wordCount")

    assert baseline.rows == optimized.rows

    print("\nEXP-4 implication (precomputed largeParagraphs):")
    print(format_table([baseline.as_row(), optimized.as_row()],
                       columns=["label", "rows", "cost_units", "method_calls",
                                "property_reads"]))
    print(f"wordCount calls: {baseline_wordcount} -> {optimized_wordcount}")
    print(f"work speedup: {speedup(baseline, optimized, 'cost_units'):.1f}x")

    # The implied restriction replaces the expensive wordCount predicate by a
    # cheap membership test for most paragraphs: wordCount is now evaluated
    # only for the (few) members of largeParagraphs.
    assert optimized.cost_units < baseline.cost_units / 2
    assert optimized_wordcount < baseline_wordcount / 10


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    size = SCALING_SIZES[0] if quick else DEFAULT_SIZE
    cases = []
    for label, excluded in (("with-implication", ()),
                            ("without-implication", ("semantic:implication",))):
        session = semantic_session(size, exclude_tags=tuple(excluded))
        measurement = measure_query(session, QUERY, label)
        wordcount_calls = session.database.statistics.calls_of(
            "Paragraph", "wordCount")
        cases.append({
            "case": label,
            "n_documents": size,
            "rows": measurement.rows,
            "cost_units": round(measurement.cost_units, 1),
            "wordcount_calls": int(wordcount_calls),
        })
    return cases


def check(record: dict) -> str | None:
    by_case = {case["case"]: case for case in record["cases"]}
    with_impl = by_case["with-implication"]
    without = by_case["without-implication"]
    if with_impl["rows"] != without["rows"]:
        return "implication changed query results"
    if not with_impl["wordcount_calls"] < without["wordcount_calls"] / 10:
        return "implication did not cut wordCount calls by >10x"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp4-implication", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
