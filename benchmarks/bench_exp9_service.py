"""EXP-9 — Prepared/cached execution vs the per-query full pipeline.

EXP-7 measures what semantic optimization costs per query; this experiment
shows the service layer amortizing that cost away.  The exp2 workload (the
motivating query) is executed many times with rotating bind values:

* **full-pipeline** — one :class:`~repro.session.Session`, each request pays
  parse → analyze → translate → optimize → compile → execute (the optimizer
  itself is generated once; regenerating it per request was the old
  ``run_query`` behaviour and would be an unfair baseline);
* **prepared** — one :class:`~repro.service.QueryService`, each request
  resolves the statement from the text cache, the optimized + compiled plan
  from the plan cache, binds the parameters and runs the compiled closures;
* **prepared-concurrent** — the same requests fanned out over the service's
  worker pool (informative; Python threads share the interpreter, so this
  measures coordination overhead, not parallel speedup).

Acceptance: prepared throughput ≥ 5× full-pipeline throughput, and the
differential check — every prepared result equals a fresh session's result,
across bindings and after invalidation events (index DDL, bulk data load).

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp9_service.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp9_service.py
"""

from __future__ import annotations

import sys
import time

from conftest import DEFAULT_SIZE, SCALING_SIZES
from repro.bench import format_table, standalone_main
from repro.service import QueryService
from repro.session import Session
from repro.workloads import document_knowledge, generate_document_database
from repro.workloads.documents import QUERY_TERM

#: the acceptance threshold: cached prepared execution must deliver at least
#: this many times the per-query full-pipeline throughput
MIN_THROUGHPUT_SPEEDUP = 5.0

PARAM_QUERY = ("ACCESS p FROM p IN Paragraph "
               "WHERE p->contains_string(:term) AND "
               "(p->document()).title == :title")


def _workload(database, n_requests: int) -> list[dict]:
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})
    return [{"term": QUERY_TERM, "title": titles[i % len(titles)]}
            for i in range(n_requests)]


def _fresh(n_documents: int):
    # exp9 mutates the database (invalidation phase): never reuse the
    # conftest-cached databases.
    database = generate_document_database(n_documents=n_documents)
    return database, document_knowledge(database.schema)


def _throughput(run, n_requests: int) -> tuple[float, float]:
    started = time.perf_counter()
    run()
    elapsed = time.perf_counter() - started
    return elapsed, n_requests / elapsed if elapsed > 0 else float("inf")


def run_cases(quick: bool = False) -> list[dict]:
    n_documents = SCALING_SIZES[0] if quick else DEFAULT_SIZE
    n_requests = 12 if quick else 40
    database, knowledge = _fresh(n_documents)
    requests = _workload(database, n_requests)

    session = Session(database, knowledge=knowledge)
    service = QueryService(database, knowledge=knowledge)

    # Differential check on every binding before timing anything.
    for parameters in requests[:len({r["title"] for r in requests})]:
        prepared = service.execute(PARAM_QUERY, parameters)
        reference = session.execute(PARAM_QUERY, parameters=parameters)
        assert prepared.value_set() == reference.value_set(), \
            f"prepared result diverges for {parameters}"

    pipeline_seconds, pipeline_qps = _throughput(
        lambda: [session.execute(PARAM_QUERY, parameters=p)
                 for p in requests], n_requests)
    prepared_seconds, prepared_qps = _throughput(
        lambda: [service.execute(PARAM_QUERY, p) for p in requests],
        n_requests)
    concurrent_seconds, concurrent_qps = _throughput(
        lambda: service.run_concurrent(
            [(PARAM_QUERY, p) for p in requests], workers=4), n_requests)

    snapshot = service.metrics.snapshot()
    cases = [
        {"case": "full-pipeline", "n_documents": n_documents,
         "requests": n_requests,
         "seconds": round(pipeline_seconds, 4),
         "queries_per_second": round(pipeline_qps, 1)},
        {"case": "prepared", "n_documents": n_documents,
         "requests": n_requests,
         "seconds": round(prepared_seconds, 4),
         "queries_per_second": round(prepared_qps, 1),
         "cache_hit_rate": round(snapshot["hit_rate"], 3)},
        {"case": "prepared-concurrent", "n_documents": n_documents,
         "requests": n_requests,
         "seconds": round(concurrent_seconds, 4),
         "queries_per_second": round(concurrent_qps, 1)},
    ]

    # Invalidation phase: DDL and a bulk load must evict cached plans
    # without ever serving a wrong (or crashing) answer.
    database.create_hash_index("Paragraph", "number")
    for i in range(database.object_count() // 2):
        database.create("Document", title=f"exp9 bulk {i}", sections=set())
    post_session = Session(database, knowledge=knowledge)
    for parameters in requests[:3]:
        prepared = service.execute(PARAM_QUERY, parameters)
        reference = post_session.execute(PARAM_QUERY, parameters=parameters)
        assert prepared.value_set() == reference.value_set(), \
            "prepared result diverges after invalidation events"
    cases.append({
        "case": "post-invalidation-differential", "n_documents": n_documents,
        "requests": 3, "seconds": 0.0,
        "queries_per_second": 0.0,
        "invalidations": service.cache.statistics.invalidations,
    })
    return cases


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    speedup = (by_case["prepared"]["queries_per_second"]
               / max(by_case["full-pipeline"]["queries_per_second"], 1e-9))
    return {
        "throughput_speedup": round(speedup, 2),
        "throughput_speedup_target": MIN_THROUGHPUT_SPEEDUP,
    }


def check(record: dict) -> str | None:
    if record["throughput_speedup"] < MIN_THROUGHPUT_SPEEDUP:
        return (f"prepared throughput speedup {record['throughput_speedup']}x "
                f"is below the {MIN_THROUGHPUT_SPEEDUP}x target")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp9_prepared_execution_at_least_5x_throughput(benchmark):
    """Acceptance: cached prepared execution ≥5× the full pipeline."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-9 prepared service vs full pipeline (quick):")
    print(format_table(cases))
    print(f"throughput speedup: {summary['throughput_speedup']}x")
    assert summary["throughput_speedup"] >= MIN_THROUGHPUT_SPEEDUP


def test_exp9_cache_hit_rate_is_high(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    prepared = next(case for case in cases if case["case"] == "prepared")
    assert prepared["cache_hit_rate"] > 0.9


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp9-service", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
