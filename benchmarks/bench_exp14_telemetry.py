"""EXP-14 — Telemetry overhead: tracing on vs off on the prepared workload.

The telemetry design constraint (DESIGN.md "Telemetry") is that tracing
*off* costs one branch per instrumentation point and tracing *on* stays
cheap enough to leave enabled in production-style runs.  This experiment
reuses the exp9 prepared workload (the motivating query with rotating bind
values against one :class:`~repro.service.QueryService`) and times three
configurations:

* **tracing-off** — the default service; instrumentation points see no
  active span and return the shared no-op singleton;
* **tracing-on** — span trees are built, ring-buffered and annotated for
  every statement;
* **tracing+slowlog** — tracing on plus a slow-query threshold high enough
  to never fire (the ``would_log`` check runs per statement).

Acceptance: tracing-on overhead ≤ 5% of tracing-off throughput (with a
noise allowance on the sub-second quick runs), and the traced run must
actually capture one span tree per statement.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp14_telemetry.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp14_telemetry.py
"""

from __future__ import annotations

import sys
import time

from conftest import DEFAULT_SIZE, SCALING_SIZES
from repro.bench import format_table, standalone_main
from repro.service import QueryService
from repro.workloads import document_knowledge, generate_document_database
from repro.workloads.documents import QUERY_TERM

#: acceptance threshold: tracing-on may cost at most this fraction of the
#: tracing-off wall time on the prepared workload
MAX_TRACING_OVERHEAD = 0.05
#: quick runs finish in tens of milliseconds where scheduler noise alone
#: exceeds 5%; the check phase allows this absolute slack on top
NOISE_ALLOWANCE_SECONDS = 0.05

PARAM_QUERY = ("ACCESS p FROM p IN Paragraph "
               "WHERE p->contains_string(:term) AND "
               "(p->document()).title == :title")


def _workload(database, n_requests: int) -> list[dict]:
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})
    return [{"term": QUERY_TERM, "title": titles[i % len(titles)]}
            for i in range(n_requests)]


def _timed_run(service: QueryService, requests: list[dict]) -> float:
    # Warm the plan cache outside the timed region: both configurations
    # then measure steady-state cached execution, which is where tracing
    # overhead would actually be paid.
    service.execute(PARAM_QUERY, requests[0])
    started = time.perf_counter()
    for parameters in requests:
        service.execute(PARAM_QUERY, parameters)
    return time.perf_counter() - started


def run_cases(quick: bool = False) -> list[dict]:
    n_documents = SCALING_SIZES[0] if quick else DEFAULT_SIZE
    n_requests = 60 if quick else 300
    database = generate_document_database(n_documents=n_documents)
    knowledge = document_knowledge(database.schema)
    requests = _workload(database, n_requests)

    configurations = [
        ("tracing-off", {}),
        ("tracing-on", {"tracing": True}),
        ("tracing+slowlog", {"tracing": True, "slow_query_ms": 1e9}),
    ]
    cases = []
    for name, kwargs in configurations:
        service = QueryService(database, knowledge=knowledge, **kwargs)
        seconds = _timed_run(service, requests)
        case = {
            "case": name, "n_documents": n_documents,
            "requests": n_requests, "seconds": round(seconds, 4),
            "queries_per_second": round(n_requests / seconds, 1)
            if seconds > 0 else float("inf"),
            "spans_captured": len(service.tracer),
        }
        if name == "tracing-off":
            assert case["spans_captured"] == 0, \
                "tracing-off must not record spans"
        else:
            # the tracer ring is bounded; every request must have produced
            # a tree (ring capacity 256 > n_requests in both modes)
            assert case["spans_captured"] >= min(n_requests, 256), \
                f"{name} captured {case['spans_captured']} spans"
            execute = service.registry.histogram(
                "repro_execute_seconds").snapshot()
            assert execute["count"] == n_requests + 1  # + the warm-up
        cases.append(case)
    return cases


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    off = by_case["tracing-off"]["seconds"]
    on = by_case["tracing-on"]["seconds"]
    overhead = (on - off) / off if off > 0 else 0.0
    return {
        "tracing_overhead_fraction": round(overhead, 4),
        "tracing_overhead_target": MAX_TRACING_OVERHEAD,
        "tracing_off_seconds": off,
        "tracing_on_seconds": on,
    }


def check(record: dict) -> str | None:
    off = record["tracing_off_seconds"]
    on = record["tracing_on_seconds"]
    budget = off * (1.0 + MAX_TRACING_OVERHEAD) + NOISE_ALLOWANCE_SECONDS
    if on > budget:
        return (f"tracing-on wall time {on}s exceeds the "
                f"{MAX_TRACING_OVERHEAD:.0%}+noise budget {budget:.4f}s "
                f"over tracing-off {off}s")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp14_tracing_overhead_within_budget(benchmark):
    """Acceptance: tracing-on ≤ 5% (+ noise allowance) over tracing-off."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-14 telemetry overhead (quick):")
    print(format_table(cases))
    print(f"tracing overhead: {summary['tracing_overhead_fraction']:.2%}")
    record = {**summary}
    assert check(record) is None, check(record)


def test_exp14_tracing_off_records_no_spans(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    off = next(case for case in cases if case["case"] == "tracing-off")
    assert off["spans_captured"] == 0


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp14-telemetry", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
