"""EXP-7 — Optimizer overhead (Sections 6 and 7).

The Volcano-style search is exhaustive on the logical level; adding semantic
rules enlarges the search space.  This experiment measures optimization time,
the number of logical plans explored and the number of transformation
applications as a function of (a) the amount of semantic knowledge and
(b) the query, showing that the overhead stays small (milliseconds) for the
paper-sized queries and rule sets.
"""

from __future__ import annotations

import pytest

from conftest import DEFAULT_SIZE, semantic_session
from repro.bench import format_table
from repro.workloads import document_workload, motivating_query

RULE_VARIANTS = [
    ("structural-only", ("semantic",)),
    ("structural+conditions", ("semantic:expression", "semantic:query-method",
                               "semantic:implication")),
    ("full-knowledge", ()),
]


@pytest.mark.parametrize("label,excluded", RULE_VARIANTS,
                         ids=[label for label, _ in RULE_VARIANTS])
def test_exp7_overhead_by_rule_count(benchmark, label, excluded):
    session = semantic_session(DEFAULT_SIZE, exclude_tags=tuple(excluded))
    query = motivating_query().text
    translation = session.translate(query)

    result = benchmark(lambda: session.optimizer.optimize(translation.plan))

    statistics = result.statistics
    print(f"\nEXP-7 {label}: rules={len(session.optimizer.rule_set)} "
          f"plans={statistics.logical_plans_explored} "
          f"transformations={statistics.transformations_applied} "
          f"time={statistics.optimization_seconds * 1000:.1f}ms")
    assert not statistics.exploration_truncated
    assert statistics.optimization_seconds < 2.0


def test_exp7_overhead_per_query(benchmark):
    """Optimization statistics for every workload query under full knowledge."""
    session = semantic_session(DEFAULT_SIZE)
    rows = []
    for query in document_workload():
        translation = session.translate(query.text)
        result = session.optimizer.optimize(translation.plan)
        statistics = result.statistics
        rows.append({
            "query": query.name,
            "plans": statistics.logical_plans_explored,
            "transformations": statistics.transformations_applied,
            "physical_costed": statistics.physical_plans_costed,
            "time_ms": round(statistics.optimization_seconds * 1000, 1),
        })

    benchmark.pedantic(
        lambda: session.optimizer.optimize(
            session.translate(motivating_query().text).plan),
        rounds=3, iterations=1)

    print("\nEXP-7 optimizer overhead per workload query:")
    print(format_table(rows))
    assert all(row["plans"] > 0 for row in rows)
