"""EXP-7 — Optimizer overhead (Sections 6 and 7).

The Volcano-style search is exhaustive on the logical level; adding semantic
rules enlarges the search space.  This experiment measures optimization time,
the number of logical plans explored and the number of transformation
applications as a function of (a) the amount of semantic knowledge and
(b) the query, showing that the overhead stays small (milliseconds) for the
paper-sized queries and rule sets.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp7_optimizer_overhead.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

import pytest

from conftest import DEFAULT_SIZE, SCALING_SIZES, semantic_session
from repro.bench import format_table, standalone_main
from repro.workloads import document_workload, motivating_query

RULE_VARIANTS = [
    ("structural-only", ("semantic",)),
    ("structural+conditions", ("semantic:expression", "semantic:query-method",
                               "semantic:implication")),
    ("full-knowledge", ()),
]


@pytest.mark.parametrize("label,excluded", RULE_VARIANTS,
                         ids=[label for label, _ in RULE_VARIANTS])
def test_exp7_overhead_by_rule_count(benchmark, label, excluded):
    session = semantic_session(DEFAULT_SIZE, exclude_tags=tuple(excluded))
    query = motivating_query().text
    translation = session.translate(query)

    result = benchmark(lambda: session.optimizer.optimize(translation.plan))

    statistics = result.statistics
    print(f"\nEXP-7 {label}: rules={len(session.optimizer.rule_set)} "
          f"plans={statistics.logical_plans_explored} "
          f"transformations={statistics.transformations_applied} "
          f"time={statistics.optimization_seconds * 1000:.1f}ms")
    assert not statistics.exploration_truncated
    assert statistics.optimization_seconds < 2.0


def test_exp7_overhead_per_query(benchmark):
    """Optimization statistics for every workload query under full knowledge."""
    session = semantic_session(DEFAULT_SIZE)
    rows = []
    for query in document_workload():
        translation = session.translate(query.text)
        result = session.optimizer.optimize(translation.plan)
        statistics = result.statistics
        rows.append({
            "query": query.name,
            "plans": statistics.logical_plans_explored,
            "transformations": statistics.transformations_applied,
            "physical_costed": statistics.physical_plans_costed,
            "time_ms": round(statistics.optimization_seconds * 1000, 1),
        })

    benchmark.pedantic(
        lambda: session.optimizer.optimize(
            session.translate(motivating_query().text).plan),
        rounds=3, iterations=1)

    print("\nEXP-7 optimizer overhead per workload query:")
    print(format_table(rows))
    assert all(row["plans"] > 0 for row in rows)


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    size = SCALING_SIZES[0] if quick else DEFAULT_SIZE
    cases = []
    for label, excluded in RULE_VARIANTS:
        session = semantic_session(size, exclude_tags=tuple(excluded))
        translation = session.translate(motivating_query().text)
        result = session.optimizer.optimize(translation.plan)
        statistics = result.statistics
        cases.append({
            "case": f"rules:{label}",
            "rules": len(session.optimizer.rule_set),
            "plans": statistics.logical_plans_explored,
            "transformations": statistics.transformations_applied,
            "time_ms": round(statistics.optimization_seconds * 1000, 1),
            "truncated": statistics.exploration_truncated,
        })
    session = semantic_session(size)
    queries = document_workload()
    if quick:
        queries = queries[:3]
    for query in queries:
        translation = session.translate(query.text)
        result = session.optimizer.optimize(translation.plan)
        statistics = result.statistics
        cases.append({
            "case": f"query:{query.name}",
            "rules": len(session.optimizer.rule_set),
            "plans": statistics.logical_plans_explored,
            "transformations": statistics.transformations_applied,
            "time_ms": round(statistics.optimization_seconds * 1000, 1),
            "truncated": statistics.exploration_truncated,
        })
    return cases


def check(record: dict) -> str | None:
    for case in record["cases"]:
        if case["truncated"]:
            return f"{case['case']}: exploration was truncated"
        if case["time_ms"] >= 2000:
            return f"{case['case']}: optimization took {case['time_ms']}ms (>2s)"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp7-optimizer-overhead", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
