"""EXP-16 — durable storage: WAL throughput overhead and recovery speed.

The write-ahead log hooks the commit-scope seam: one logical record per
published scope, so an ``executemany`` batch of N inserts costs one
append and at most one fsync regardless of N.  This experiment quantifies
what durability costs on the ingest path and what recovery delivers on
the replay path:

* **memory** — the baseline: ``executemany`` INSERT batches into an
  in-memory database (no adapter attached);
* **wal-group-commit** — the same batches with a
  :class:`~repro.storage.FileStorageAdapter` under the default
  ``interval`` fsync policy (group commit: write+flush per append, fsync
  amortized over the flush interval);
* **wal-fsync-always** — the same batches with an fsync barrier after
  every record: the documented worst case, dominated by device sync
  latency rather than anything the engine does;
* **recovery-replay** — opening a directory whose WAL holds single-row
  commit records: recovered records per second.

Acceptance: group-commit durable ingest sustains at least
``MIN_DURABLE_RATIO`` of the in-memory row rate, and recovery replays at
least ``MIN_REPLAY_RECORDS_PER_S`` records/s on the quick profile.
fsync-always is reported (and must merely complete) — its throughput is
a property of the disk, not a regression signal.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp16_durability.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp16_durability.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time

from repro.api.connection import connect
from repro.bench import format_table, standalone_main
from repro.datamodel.database import Database
from repro.datamodel.schema import Schema
from repro.storage import FileStorageAdapter

#: group-commit durable ingest must sustain at least this fraction of
#: the in-memory executemany row rate
MIN_DURABLE_RATIO = 0.5
#: recovery must replay at least this many WAL records per second
MIN_REPLAY_RECORDS_PER_S = 10_000

INSERT = "INSERT INTO Item (name, value) VALUES (:n, :v)"


def _fresh_connection(durability: str | None, fsync: str = "interval"):
    database = Database(Schema("exp16"))
    if durability is None:
        connection = connect(database)
    else:
        connection = connect(database, durability=durability,
                             storage_path=tempfile.mkdtemp(prefix="exp16-"),
                             wal_fsync=fsync, checkpoint_interval=0)
    connection.execute("CREATE CLASS Item (name: STRING, value: INT)")
    return connection


def _ingest(connection, n_rows: int, batch_size: int) -> float:
    """Insert *n_rows* in executemany batches; returns elapsed seconds
    (including the close-time flush, so buffered writes are paid for)."""
    started = time.perf_counter()
    for base in range(0, n_rows, batch_size):
        count = min(batch_size, n_rows - base)
        connection.executemany(
            INSERT, [{"n": f"item{base + i}", "v": base + i}
                     for i in range(count)])
    connection.database.storage and connection.database.storage.flush()
    return time.perf_counter() - started


def _teardown(connection) -> None:
    database = connection.database
    storage = database.storage
    connection.close()
    database.close()
    if storage is not None:
        shutil.rmtree(storage.path, ignore_errors=True)


def _ingest_case(name: str, durability: str | None, fsync: str,
                 n_rows: int, batch_size: int, repeats: int = 2) -> dict:
    # best-of-N with a fresh database per attempt: the ratio check below
    # compares two one-shot wall-clock runs, so a single OS-level stall
    # (a background fsync landing on a busy device) must not fail CI
    best = None
    for _ in range(max(1, repeats)):
        connection = _fresh_connection(durability, fsync)
        try:
            elapsed = _ingest(connection, n_rows, batch_size)
            counters = (connection.database.storage.counters()
                        if connection.database.storage else {})
        finally:
            _teardown(connection)
        if best is None or elapsed < best["seconds"]:
            best = {
                "case": name,
                "rows": n_rows,
                "batch_size": batch_size,
                "seconds": round(elapsed, 4),
                "rows_per_s": round(n_rows / elapsed, 1),
                "wal_records": counters.get("wal_records", 0),
                "wal_fsyncs": counters.get("wal_fsyncs", 0),
            }
    return best


def _recovery_case(n_records: int) -> dict:
    """Build a WAL of single-row commit records, then time recovery."""
    path = tempfile.mkdtemp(prefix="exp16-recover-")
    try:
        connection = connect(Database(Schema("exp16")), durability="wal",
                             storage_path=path, wal_fsync="never",
                             checkpoint_interval=0)
        connection.execute("CREATE CLASS Item (name: STRING, value: INT)")
        for i in range(n_records):
            connection.execute(INSERT, {"n": f"item{i}", "v": i})
        connection.close()
        connection.database.close()

        database = Database(Schema("exp16"))
        adapter = FileStorageAdapter(path, fsync="never",
                                     checkpoint_interval=0)
        started = time.perf_counter()
        database.attach_storage(adapter)
        elapsed = time.perf_counter() - started
        replayed = adapter.counters()["recovery_replayed_records"]
        assert database.object_count() == n_records
        database.close()
        return {
            "case": "recovery-replay",
            "rows": n_records,
            "batch_size": 1,
            "seconds": round(elapsed, 4),
            "rows_per_s": round(replayed / elapsed, 1),
            "wal_records": replayed,
            "wal_fsyncs": 0,
        }
    finally:
        shutil.rmtree(path, ignore_errors=True)


def run_cases(quick: bool = False) -> list[dict]:
    n_rows = 2_000 if quick else 20_000
    batch_size = 100
    n_recovery = 2_000 if quick else 10_000
    # fsync-always pays a device barrier per record: keep the row count
    # small enough that slow disks do not dominate the whole experiment
    n_always = 200 if quick else 1_000
    cases = [
        _ingest_case("memory", None, "interval", n_rows, batch_size),
        _ingest_case("wal-group-commit", "wal", "interval",
                     n_rows, batch_size),
        # reported, not checked — one attempt is enough
        _ingest_case("wal-fsync-always", "wal", "always",
                     n_always, batch_size, repeats=1),
        _recovery_case(n_recovery),
    ]
    return cases


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    memory_rate = by_case["memory"]["rows_per_s"]
    durable_rate = by_case["wal-group-commit"]["rows_per_s"]
    return {
        "memory_rows_per_s": memory_rate,
        "group_commit_rows_per_s": durable_rate,
        "fsync_always_rows_per_s": by_case["wal-fsync-always"]["rows_per_s"],
        "durable_ratio": (round(durable_rate / memory_rate, 3)
                          if memory_rate > 0 else 0.0),
        "durable_ratio_target": MIN_DURABLE_RATIO,
        "replay_records_per_s": by_case["recovery-replay"]["rows_per_s"],
        "replay_target_per_s": MIN_REPLAY_RECORDS_PER_S,
    }


def check(record: dict) -> str | None:
    ratio = record["durable_ratio"]
    if ratio < MIN_DURABLE_RATIO:
        return (f"group-commit durable ingest sustains only {ratio}x of the "
                f"in-memory rate (target ≥ {MIN_DURABLE_RATIO}x)")
    replay = record["replay_records_per_s"]
    if replay < MIN_REPLAY_RECORDS_PER_S:
        return (f"recovery replays {replay} records/s "
                f"(target ≥ {MIN_REPLAY_RECORDS_PER_S}/s)")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp16_group_commit_keeps_half_the_ingest_rate(benchmark):
    """Acceptance: durable group-commit ingest ≥ 0.5× in-memory, and
    recovery replay ≥ 10k records/s (quick profile)."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-16 durable ingest and recovery (quick):")
    print(format_table(cases))
    print(f"durable ratio: {summary['durable_ratio']}x, replay: "
          f"{summary['replay_records_per_s']} records/s")
    assert check(summary) is None, check(summary)


def test_exp16_one_wal_record_per_batch(benchmark):
    """An executemany batch costs one WAL record, not one per row."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    group = next(c for c in cases if c["case"] == "wal-group-commit")
    batches = group["rows"] / group["batch_size"]
    # one record per executemany commit scope, plus the CREATE CLASS DDL
    assert group["wal_records"] == batches + 1, \
        f"{group['wal_records']} records for {batches} batches"


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp16-durability", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
