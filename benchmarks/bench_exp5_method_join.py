"""EXP-5 — Methods as join predicates (Example 1).

``p->sameDocument(q)`` is a parametrized method used as a join predicate.
Naively this forces a nested-loop join invoking the method (and, inside it,
two ``document()`` calls) for every pair of paragraphs — quadratic in the
number of paragraphs.  With the J1 condition equivalence
(``p->sameDocument(q) ⇔ p->document() == q->document()``) and the E1 path
equivalence, the optimizer turns the predicate into an attribute equi-join
that a hash join evaluates with linear method/property work.

Expected shape: naive method invocations grow quadratically, optimized work
grows linearly; the speedup therefore grows with database size.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp5_method_join.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

import pytest

from conftest import semantic_session
from repro.bench import format_table, measure_query, speedup, standalone_main
from repro.physical.plans import HashJoin, NestedLoopJoin, walk_physical
from repro.workloads import same_document_join_query

QUERY = same_document_join_query().text

#: deliberately small sizes — the naive baseline is quadratic
JOIN_SIZES = (4, 8, 16)


@pytest.mark.parametrize("n_documents", JOIN_SIZES)
def test_exp5_method_join_rewrite(benchmark, n_documents):
    session = semantic_session(n_documents)

    naive = measure_query(session, QUERY, f"naive[{n_documents}]",
                          optimize=False)
    optimized = benchmark.pedantic(
        lambda: measure_query(session, QUERY, f"optimized[{n_documents}]"),
        rounds=1, iterations=1)

    assert naive.rows == optimized.rows

    # The optimized plan must use a hash join, not a nested loop with the
    # method predicate.
    result = session.execute(QUERY)
    nodes = list(walk_physical(result.physical_plan))
    assert any(isinstance(node, HashJoin) for node in nodes)
    assert not any(isinstance(node, NestedLoopJoin) for node in nodes)

    print(f"\nEXP-5 sameDocument join (n_documents={n_documents}):")
    print(format_table([naive.as_row(), optimized.as_row()],
                       columns=["label", "rows", "seconds", "cost_units",
                                "method_calls", "property_reads"]))
    print(f"method-call speedup: {speedup(naive, optimized, 'method_calls'):.1f}x")

    assert optimized.method_calls < naive.method_calls / 10


def test_exp5_speedup_grows_quadratically(benchmark):
    """The naive/optimized ratio grows with the number of paragraphs."""
    ratios = []
    for n_documents in JOIN_SIZES:
        session = semantic_session(n_documents)
        naive = measure_query(session, QUERY, "naive", optimize=False)
        optimized = measure_query(session, QUERY, "optimized")
        ratios.append((n_documents,
                       speedup(naive, optimized, "cost_units")))
    benchmark.pedantic(
        lambda: measure_query(semantic_session(JOIN_SIZES[0]), QUERY, "optimized"),
        rounds=1, iterations=1)

    print("\nEXP-5 speedup by database size:")
    print(format_table([{"n_documents": n, "speedup": round(r, 1)}
                        for n, r in ratios]))
    values = [ratio for _, ratio in ratios]
    assert values == sorted(values)


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    sizes = JOIN_SIZES[:2] if quick else JOIN_SIZES
    cases = []
    for n_documents in sizes:
        session = semantic_session(n_documents)
        naive = measure_query(session, QUERY, f"naive[{n_documents}]",
                              optimize=False)
        optimized = measure_query(session, QUERY, f"optimized[{n_documents}]")
        assert naive.rows == optimized.rows
        nodes = list(walk_physical(session.optimize(QUERY).best_plan))
        cases.append({
            "case": f"n={n_documents}",
            "n_documents": n_documents,
            "rows": optimized.rows,
            "naive_method_calls": int(naive.method_calls),
            "optimized_method_calls": int(optimized.method_calls),
            "method_call_speedup":
                round(speedup(naive, optimized, "method_calls"), 1),
            "uses_hash_join": any(isinstance(n, HashJoin) for n in nodes),
            "uses_nested_loop": any(isinstance(n, NestedLoopJoin)
                                    for n in nodes),
        })
    return cases


def check(record: dict) -> str | None:
    for case in record["cases"]:
        if not case["uses_hash_join"] or case["uses_nested_loop"]:
            return f"{case['case']}: optimized plan is not a pure hash join"
        if case["method_call_speedup"] <= 10:
            return f"{case['case']}: method-call speedup below 10x"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp5-method-join", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
