"""Shared fixtures for the benchmark suite.

Databases are generated once per size and cached for the whole benchmark
session; each experiment opens the sessions it needs (full knowledge,
ablated, or structural-only) on top of the cached databases.

Workload generation is explicitly seeded (``REPRO_BENCH_SEED``, default
42, settable per run via the shared ``--seed`` CLI flag of
:func:`repro.bench.standalone_main`), so quick/CI runs are deterministic:
two runs with the same seed measure identical databases and the smoke
checks can assert speedup directions without flaking on data variance.
"""

from __future__ import annotations

import os

import pytest

from repro.datamodel.database import Database
from repro.session import Session
from repro.workloads import (
    document_knowledge,
    generate_document_database,
)

#: database sizes (number of documents) used by the scaling experiments;
#: with 4 sections × 5 paragraphs these are 400 / 1600 / 4000 paragraphs
SCALING_SIZES = (20, 80, 200)

#: default size for single-size experiments
DEFAULT_SIZE = 80


_DATABASE_CACHE: dict[tuple[int, int], Database] = {}


def bench_seed() -> int:
    """The workload-generation seed for this run (``REPRO_BENCH_SEED``)."""
    try:
        return int(os.environ.get("REPRO_BENCH_SEED", "42"))
    except ValueError:
        return 42


def document_database(n_documents: int) -> Database:
    """A cached synthetic document database with *n_documents* documents,
    generated deterministically from the run's bench seed."""
    key = (n_documents, bench_seed())
    if key not in _DATABASE_CACHE:
        _DATABASE_CACHE[key] = generate_document_database(
            n_documents=n_documents, seed=key[1])
    return _DATABASE_CACHE[key]


def semantic_session(n_documents: int, exclude_tags: tuple[str, ...] = ()) -> Session:
    """A session with the paper's semantic knowledge (optionally ablated)."""
    database = document_database(n_documents)
    return Session(database,
                   knowledge=document_knowledge(database.schema),
                   exclude_tags=exclude_tags)


def structural_session(n_documents: int) -> Session:
    """A session whose optimizer only has the predefined structural rules."""
    return semantic_session(n_documents, exclude_tags=("semantic",))


@pytest.fixture(scope="session")
def default_session() -> Session:
    return semantic_session(DEFAULT_SIZE)


@pytest.fixture(scope="session")
def small_session() -> Session:
    return semantic_session(SCALING_SIZES[0])
