"""Shared fixtures for the benchmark suite.

Databases are generated once per size and cached for the whole benchmark
session; each experiment opens the sessions it needs (full knowledge,
ablated, or structural-only) on top of the cached databases.
"""

from __future__ import annotations

import pytest

from repro.datamodel.database import Database
from repro.session import Session
from repro.workloads import (
    document_knowledge,
    generate_document_database,
)

#: database sizes (number of documents) used by the scaling experiments;
#: with 4 sections × 5 paragraphs these are 400 / 1600 / 4000 paragraphs
SCALING_SIZES = (20, 80, 200)

#: default size for single-size experiments
DEFAULT_SIZE = 80


_DATABASE_CACHE: dict[int, Database] = {}


def document_database(n_documents: int) -> Database:
    """A cached synthetic document database with *n_documents* documents."""
    if n_documents not in _DATABASE_CACHE:
        _DATABASE_CACHE[n_documents] = generate_document_database(
            n_documents=n_documents)
    return _DATABASE_CACHE[n_documents]


def semantic_session(n_documents: int, exclude_tags: tuple[str, ...] = ()) -> Session:
    """A session with the paper's semantic knowledge (optionally ablated)."""
    database = document_database(n_documents)
    return Session(database,
                   knowledge=document_knowledge(database.schema),
                   exclude_tags=exclude_tags)


def structural_session(n_documents: int) -> Session:
    """A session whose optimizer only has the predefined structural rules."""
    return semantic_session(n_documents, exclude_tags=("semantic",))


@pytest.fixture(scope="session")
def default_session() -> Session:
    return semantic_session(DEFAULT_SIZE)


@pytest.fixture(scope="session")
def small_session() -> Session:
    return semantic_session(SCALING_SIZES[0])
