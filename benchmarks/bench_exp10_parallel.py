"""EXP-10 — Partitioned parallel execution of method-bearing queries.

The paper's premise is that method-bearing queries are dominated by
expensive method evaluation, which makes them the ideal candidate for
intra-query parallelism: independent partitions/morsels of a class
extension evaluate methods concurrently with near-linear speedup.

This experiment measures that on the EXP-5 method-join workload
(``p->sameDocument(q)``), with *simulated external-engine latency* on the
``document()`` method — the regime where the method's work is a blocking
engine round-trip rather than inline CPU, so worker threads genuinely
overlap it.  The E1 path equivalence is excluded: when the optimizer can
rewrite ``p->document()`` into the attribute path ``p.section.document``
it removes the method calls entirely (the semantically optimal plan needs
no parallelism); EXP-10 exercises the complementary case of a method that
cannot be rewritten away.

Compared engines, on identical data:

* sequential — the compiled engine executing the degree-1 plan
  (``hash_join`` with per-row method key evaluation);
* parallel — the degree-4 plan (``parallel_hash_join``), morsel-driven
  key evaluation on worker threads, ordered merge.

Both are prepared once and timed execution-only; both are differentially
checked against the interpreter oracle before timing.  A second case runs
a method-bearing *selection* (``contains_string``) through
``parallel_scan`` over the hash-partitioned extension.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp10_parallel.py \
        [--quick] [--json PATH] [--check] [--seed N]
"""

from __future__ import annotations

import sys
from collections import Counter

from conftest import bench_seed

from repro.bench import best_of, format_table, standalone_main
from repro.physical.evaluator import make_hashable
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.plans import PARALLEL_OPERATORS, uses_parallelism, walk_physical
from repro.service.prepared import prepare_plan
from repro.session import Session
from repro.workloads import (
    contains_only_query,
    document_knowledge,
    generate_document_database,
    same_document_join_query,
    simulate_method_latency,
)

#: workers used by the parallel plans
WORKERS = 4
#: simulated external-engine round-trip per method call (seconds); sleeps
#: release the GIL, so this is parallelizable work even on one core
METHOD_LATENCY = 0.0008
#: timing rounds (best-of)
ROUNDS = 3

JOIN_QUERY = same_document_join_query().text
SCAN_QUERY = contains_only_query().text

#: knowledge ablation: keep J1 (sameDocument ⇔ document()==document()) but
#: drop the expression equivalences (E1) that would eliminate the method
JOIN_EXCLUDE = ("semantic:expression",)
#: for the scan case additionally drop E5, which would turn the selection
#: into one bulk retrieve_by_string call
SCAN_EXCLUDE = ("semantic",)


def _latency_database(n_documents: int):
    database = generate_document_database(n_documents=n_documents,
                                          seed=bench_seed())
    simulate_method_latency(database.schema, {
        "document": METHOD_LATENCY,
        "contains_string": METHOD_LATENCY,
        "sameDocument": METHOD_LATENCY,
    })
    return database


def _measure(database, query: str, exclude_tags, label: str) -> dict:
    knowledge = document_knowledge(database.schema)
    sequential = Session(database, knowledge=knowledge,
                         exclude_tags=exclude_tags, parallelism=1)
    parallel = Session(database, knowledge=knowledge,
                       exclude_tags=exclude_tags, parallelism=WORKERS)
    seq_plan = sequential.optimize(query).best_plan
    par_plan = parallel.optimize(query).best_plan

    # Differential check against the interpreter oracle before timing.
    oracle = Counter(make_hashable(row)
                     for row in execute_plan_interpreted(par_plan, database))
    seq_rows = execute_plan(seq_plan, database)
    par_rows = execute_plan(par_plan, database)
    assert Counter(make_hashable(row) for row in par_rows) == oracle
    assert Counter(make_hashable(row) for row in seq_rows) == oracle

    seq_executable = prepare_plan(seq_plan, database)
    par_executable = prepare_plan(par_plan, database)
    seq_seconds = best_of(seq_executable.run, ROUNDS)
    par_seconds = best_of(par_executable.run, ROUNDS)

    return {
        "case": label,
        "rows": len(par_rows),
        "workers": WORKERS,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        "speedup": round(seq_seconds / par_seconds, 2) if par_seconds else 0.0,
        "parallel_operators": [node.describe()
                               for node in walk_physical(par_plan)
                               if isinstance(node, PARALLEL_OPERATORS)],
        "uses_parallel_operator": uses_parallelism(par_plan),
        "sequential_is_sequential": not uses_parallelism(seq_plan),
    }


def run_cases(quick: bool = False) -> list[dict]:
    sizes = (6,) if quick else (8, 16)
    cases = []
    for n_documents in sizes:
        database = _latency_database(n_documents)
        cases.append(_measure(database, JOIN_QUERY, JOIN_EXCLUDE,
                              f"method-join[n={n_documents}]"))
        cases.append(_measure(database, SCAN_QUERY, SCAN_EXCLUDE,
                              f"method-scan[n={n_documents}]"))
    return cases


def summarize(cases: list[dict]) -> dict:
    join_speedups = [case["speedup"] for case in cases
                     if case["case"].startswith("method-join")]
    return {
        "workers": WORKERS,
        "method_latency_seconds": METHOD_LATENCY,
        "min_join_speedup": min(join_speedups) if join_speedups else 0.0,
    }


def check(record: dict) -> str | None:
    for case in record["cases"]:
        if not case["uses_parallel_operator"]:
            return f"{case['case']}: optimizer did not choose a parallel plan"
        if not case["sequential_is_sequential"]:
            return f"{case['case']}: degree-1 plan contains parallel operators"
        if case["case"].startswith("method-join") and case["speedup"] < 2.5:
            return (f"{case['case']}: join speedup {case['speedup']}x below "
                    f"2.5x at {WORKERS} workers")
        if case["case"].startswith("method-scan") and case["speedup"] < 1.5:
            return (f"{case['case']}: scan speedup {case['speedup']}x below "
                    f"1.5x at {WORKERS} workers")
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp10-parallel", run_cases,
                           description=__doc__.splitlines()[0],
                           summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())


# ----------------------------------------------------------------------
# pytest entry point (smoke: direction only, one small size)
# ----------------------------------------------------------------------
def test_exp10_parallel_speedup(benchmark):
    database = _latency_database(6)
    case = benchmark.pedantic(
        lambda: _measure(database, JOIN_QUERY, JOIN_EXCLUDE, "method-join[n=6]"),
        rounds=1, iterations=1)
    print("\nEXP-10 parallel method join (quick):")
    print(format_table([case], columns=["case", "rows", "workers",
                                        "sequential_seconds",
                                        "parallel_seconds", "speedup"]))
    assert case["uses_parallel_operator"]
    assert case["speedup"] > 1.5
