"""EXP-12 — statistics-driven cost estimation: ANALYZE beats flat defaults.

The paper's premise is that cost-*based* optimization needs real cost
inputs.  This experiment builds a deliberately skewed database — 90% of
``Reading`` objects share one ``category`` value while a ``score`` range
predicate matches ~1% — and plans::

    ACCESS r FROM r IN Reading
    WHERE r.category == 'common' AND r.score >= <threshold>

twice.  Without statistics the cost model assumes uniform keys, so the
hash-index lookup on ``category`` looks cheap (average bucket = 10% of the
extension) and the optimizer picks ``index_eq_scan`` — which actually emits
90% of the rows.  After ``ANALYZE``, the most-common-value statistics price
that lookup honestly and the equi-depth histogram prices the ``score``
range at ~1%, flipping the plan to ``index_range_scan`` with a residual
category filter.

Acceptance:

* the two models choose *different* access paths (eq-scan vs range-scan);
* the histogram-driven plan is at least ``MIN_SPEEDUP``× faster wall-clock
  and both plans return identical result sets (differential check);
* after ANALYZE every per-operator estimate of the chosen plan is within
  ``MAX_ESTIMATE_RATIO``× of the measured actual rows (EXPLAIN ANALYZE as
  a sanity oracle).

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp12_stats.py [--quick] [--json PATH]

or under pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_exp12_stats.py
"""

from __future__ import annotations

import random
import sys

from conftest import bench_seed
from repro import open_session
from repro.bench import best_of, format_table, standalone_main
from repro.datamodel.database import Database
from repro.datamodel.schema import ClassDef, PropertyDef, Schema
from repro.datamodel.types import INT, STRING
from repro.physical.executor import execute_plan
from repro.physical.profile import PlanProfile, estimated_vs_actual

#: the histogram-driven plan must run at least this many times faster
MIN_SPEEDUP = 2.0

#: per-operator |estimate/actual| misestimation bound after ANALYZE
MAX_ESTIMATE_RATIO = 10.0

#: fraction of readings sharing the dominant category value
COMMON_FRACTION = 0.9

QUERY = ("ACCESS r FROM r IN Reading "
         "WHERE r.category == 'common' AND r.score >= {threshold}")


def _skewed_database(n_readings: int, seed: int) -> Database:
    """A Reading(category, score) extension with heavy category skew."""
    schema = Schema("skewed-readings")
    reading = ClassDef(name="Reading")
    reading.add_property(PropertyDef("category", STRING))
    reading.add_property(PropertyDef("score", INT))
    reading.add_property(PropertyDef("payload", STRING))
    schema.add_class(reading)

    database = Database(schema, name=f"readings[{n_readings}]")
    rng = random.Random(seed)
    rows = []
    for i in range(n_readings):
        category = ("common" if rng.random() < COMMON_FRACTION
                    else f"rare{rng.randrange(9)}")
        rows.append({"category": category,
                     "score": rng.randrange(10_000),
                     "payload": f"reading {i}"})
    database.create_many("Reading", rows)
    database.create_hash_index("Reading", "category")
    database.create_sorted_index("Reading", "score")
    return database


def _plan_leaf(plan) -> str:
    """The name of the access-path leaf of a (linear) physical plan."""
    node = plan
    while node.inputs():
        node = node.inputs()[0]
    return node.name


def run_cases(quick: bool = False) -> list[dict]:
    n_readings = 5_000 if quick else 20_000
    rounds = 3 if quick else 5
    threshold = 9_900  # matches ~1% of scores
    database = _skewed_database(n_readings, bench_seed())
    session = open_session(database)
    query = QUERY.format(threshold=threshold)

    # Plan once per model: flat defaults first, ANALYZE-driven second.  The
    # physical plans are then executed directly so the comparison isolates
    # execution cost (optimization time is reported separately by EXP-7).
    flat = session.optimize(query)
    database.analyze()
    informed = session.optimize(query)

    flat_rows = execute_plan(flat.best_plan, database)
    informed_rows = execute_plan(informed.best_plan, database)
    assert {row["r"] for row in flat_rows} == \
        {row["r"] for row in informed_rows}, \
        "flat and histogram-driven plans disagree on the result set"

    flat_seconds = best_of(lambda: execute_plan(flat.best_plan, database),
                           rounds)
    informed_seconds = best_of(
        lambda: execute_plan(informed.best_plan, database), rounds)

    # EXPLAIN ANALYZE oracle: with fresh statistics, per-operator estimates
    # must stay within a sane factor of the measured cardinalities.
    profile = PlanProfile()
    execute_plan(informed.best_plan, database, profile=profile)
    comparisons = estimated_vs_actual(informed.best_plan, profile,
                                      session.optimizer.cost_model)
    worst_ratio = max(record["ratio"] for record in comparisons)

    return [
        {"case": "flat-defaults", "readings": n_readings,
         "access_path": _plan_leaf(flat.best_plan),
         "rows": len(flat_rows),
         "estimated_cost": round(flat.best_cost.cost, 1),
         "seconds": round(flat_seconds, 5)},
        {"case": "histogram-driven", "readings": n_readings,
         "access_path": _plan_leaf(informed.best_plan),
         "rows": len(informed_rows),
         "estimated_cost": round(informed.best_cost.cost, 1),
         "seconds": round(informed_seconds, 5)},
        {"case": "estimate-sanity",
         "operators": len(comparisons),
         "worst_estimate_ratio": round(worst_ratio, 2)},
    ]


def summarize(cases: list[dict]) -> dict:
    by_case = {case["case"]: case for case in cases}
    flat = by_case["flat-defaults"]
    informed = by_case["histogram-driven"]
    return {
        "speedup": round(flat["seconds"] / max(informed["seconds"], 1e-9), 2),
        "speedup_target": MIN_SPEEDUP,
        "flat_access_path": flat["access_path"],
        "informed_access_path": informed["access_path"],
        "plans_differ": flat["access_path"] != informed["access_path"],
        "worst_estimate_ratio": by_case["estimate-sanity"]
        ["worst_estimate_ratio"],
        "estimate_ratio_bound": MAX_ESTIMATE_RATIO,
    }


def check(record: dict) -> str | None:
    if not record["plans_differ"]:
        return ("flat and histogram-driven optimization chose the same "
                f"access path ({record['flat_access_path']})")
    if record["informed_access_path"] != "index_range_scan":
        return ("histogram-driven optimization did not pick the range scan "
                f"(got {record['informed_access_path']})")
    if record["speedup"] < MIN_SPEEDUP:
        return (f"histogram-driven speedup {record['speedup']}x is below "
                f"the {MIN_SPEEDUP}x target")
    if record["worst_estimate_ratio"] > MAX_ESTIMATE_RATIO:
        return (f"worst per-operator estimate ratio "
                f"{record['worst_estimate_ratio']}x exceeds the "
                f"{MAX_ESTIMATE_RATIO}x sanity bound")
    return None


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_exp12_histograms_flip_the_plan_and_win(benchmark):
    """Acceptance: different plan, >= MIN_SPEEDUP wall-clock, same rows."""
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    print("\nEXP-12 statistics-driven optimization (quick):")
    print(format_table(cases))
    print(f"speedup: {summary['speedup']}x "
          f"({summary['flat_access_path']} -> "
          f"{summary['informed_access_path']})")
    assert summary["plans_differ"]
    assert summary["informed_access_path"] == "index_range_scan"
    assert summary["speedup"] >= MIN_SPEEDUP


def test_exp12_estimates_track_actuals_after_analyze(benchmark):
    cases = run_cases(quick=True)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = summarize(cases)
    assert summary["worst_estimate_ratio"] <= MAX_ESTIMATE_RATIO


# ----------------------------------------------------------------------
# standalone CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    return standalone_main(
        "exp12-stats", run_cases,
        description=__doc__.splitlines()[0],
        summarize=summarize, check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
