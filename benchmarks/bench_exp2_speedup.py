"""EXP-2 — The optimized plan is much cheaper than naive evaluation.

Section 2.3: "The final query plan can, for a given typical database, be
evaluated much more efficiently than a straightforward evaluation of the
query without transformation."  This experiment quantifies that claim: the
motivating query is executed naively (canonical plan, per-paragraph external
method calls) and optimized (plan PQ) across database sizes, and the speedup
in logical work and external calls is reported.

Expected shape: the naive cost grows linearly with the number of paragraphs
(one contains_string call each), the optimized cost stays essentially flat,
so the speedup grows roughly linearly with database size.

Run standalone (emits a JSON perf record):

    PYTHONPATH=src python benchmarks/bench_exp2_speedup.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys

import pytest

from conftest import SCALING_SIZES, semantic_session
from repro.bench import format_table, measure_query, speedup, standalone_main
from repro.workloads import motivating_query

QUERY = motivating_query().text


@pytest.mark.parametrize("n_documents", SCALING_SIZES)
def test_exp2_optimized_vs_naive(benchmark, n_documents):
    session = semantic_session(n_documents)

    naive = measure_query(session, QUERY, label=f"naive[{n_documents}]",
                          optimize=False)
    optimized = benchmark.pedantic(
        lambda: measure_query(session, QUERY,
                              label=f"optimized[{n_documents}]"),
        rounds=3, iterations=1)

    assert naive.rows == optimized.rows
    work_speedup = speedup(naive, optimized, "cost_units")
    call_speedup = speedup(naive, optimized, "external_calls")

    # The optimized plan must win by a wide margin and the margin must grow
    # with the database (naive is linear in paragraphs, optimized ~constant).
    assert work_speedup > 10
    assert call_speedup > 10
    assert optimized.external_calls <= 2

    rows = [naive.as_row(), optimized.as_row(),
            {"label": "speedup",
             "cost_units": round(work_speedup, 1),
             "external_calls": round(call_speedup, 1)}]
    print(f"\nEXP-2 naive vs optimized (n_documents={n_documents}):")
    print(format_table(rows, columns=["label", "rows", "seconds", "cost_units",
                                      "method_calls", "external_calls",
                                      "property_reads"]))


def test_exp2_speedup_grows_with_database_size(benchmark):
    """The naive/optimized work ratio increases with database size."""
    ratios = []
    for n_documents in SCALING_SIZES:
        session = semantic_session(n_documents)
        naive = measure_query(session, QUERY, "naive", optimize=False)
        optimized = measure_query(session, QUERY, "optimized")
        ratios.append((n_documents, speedup(naive, optimized, "cost_units")))

    benchmark.pedantic(
        lambda: measure_query(semantic_session(SCALING_SIZES[-1]), QUERY, "optimized"),
        rounds=3, iterations=1)

    print("\nEXP-2 speedup by database size:")
    print(format_table([{"n_documents": n, "speedup": round(r, 1)}
                        for n, r in ratios]))
    values = [ratio for _, ratio in ratios]
    assert values == sorted(values), "speedup should grow with database size"


# ----------------------------------------------------------------------
# standalone CLI (shared harness conventions)
# ----------------------------------------------------------------------
def run_cases(quick: bool = False) -> list[dict]:
    sizes = SCALING_SIZES[:2] if quick else SCALING_SIZES
    cases = []
    for n_documents in sizes:
        session = semantic_session(n_documents)
        naive = measure_query(session, QUERY, f"naive[{n_documents}]",
                              optimize=False)
        optimized = measure_query(session, QUERY, f"optimized[{n_documents}]")
        assert naive.rows == optimized.rows
        cases.append({
            "case": f"n={n_documents}",
            "n_documents": n_documents,
            "rows": optimized.rows,
            "naive_cost_units": round(naive.cost_units, 1),
            "optimized_cost_units": round(optimized.cost_units, 1),
            "work_speedup": round(speedup(naive, optimized, "cost_units"), 1),
            "call_speedup": round(speedup(naive, optimized, "external_calls"), 1),
        })
    return cases


def check(record: dict) -> str | None:
    if any(case["work_speedup"] <= 10 for case in record["cases"]):
        return "optimized plan is not >10x cheaper than naive at every size"
    ratios = [case["work_speedup"] for case in record["cases"]]
    if ratios != sorted(ratios):
        return "speedup does not grow with database size"
    return None


def main(argv: list[str] | None = None) -> int:
    return standalone_main("exp2-speedup", run_cases,
                           description=__doc__.splitlines()[0],
                           check=check, argv=argv)


if __name__ == "__main__":
    sys.exit(main())
