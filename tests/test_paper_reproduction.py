"""End-to-end reproduction of the paper's worked example and claims.

These tests are the executable counterpart of EXPERIMENTS.md: each asserts
one of the claims the paper makes about its motivating example (Section 2.3)
and about the rule taxonomy (Section 4.2).
"""

from __future__ import annotations

import pytest

from repro.physical.plans import (
    ClassScan,
    ExpressionSetScan,
    Filter,
    HashJoin,
    NestedLoopJoin,
    SetProbeFilter,
    walk_physical,
)
from repro.workloads import (
    QUERY_TERM,
    TARGET_TITLE,
    large_paragraph_query,
    motivating_query,
    same_document_join_query,
)

QUERY = motivating_query().text


class TestMotivatingQueryQ:
    """Section 2.3: Q is rewritten — via E2, E1, E3, E4, E5 — into plan PQ."""

    def test_results_are_correct_and_nonempty(self, doc_session):
        naive = doc_session.execute_naive(QUERY)
        optimized = doc_session.execute(QUERY)
        assert len(optimized) >= 1
        assert naive.value_set() == optimized.value_set()
        # every returned paragraph really contains the term and belongs to
        # the target document
        db = doc_session.database
        for paragraph in optimized.values:
            assert QUERY_TERM.lower() in db.value(paragraph, "content").lower()
            document = db.invoke(paragraph, "document")
            assert db.value(document, "title") == TARGET_TITLE

    def test_chosen_plan_has_pq_shape(self, doc_session):
        """PQ = retrieve_by_string(...) ∩ select_by_index(...).sections.paragraphs:
        no class scan, no per-paragraph filter, external bulk methods only."""
        result = doc_session.execute(QUERY)
        nodes = list(walk_physical(result.physical_plan))
        assert not any(isinstance(node, ClassScan) for node in nodes)
        assert not any(isinstance(node, Filter) for node in nodes)
        externally_computed = [node for node in nodes
                               if isinstance(node, (ExpressionSetScan,
                                                    SetProbeFilter))]
        assert externally_computed
        plan_text = " ".join(node.describe() for node in nodes)
        assert "retrieve_by_string" in plan_text
        assert "select_by_index" in plan_text
        assert ".sections.paragraphs" in plan_text

    def test_external_work_is_two_bulk_calls(self, doc_session):
        result = doc_session.execute(QUERY)
        # exactly one IR retrieval and one index lookup, regardless of the
        # number of paragraphs in the database
        assert result.work["ir_calls"] == 1
        assert result.work["external_method_calls"] == 2

    def test_each_semantic_equivalence_fires_in_the_trace(self, doc_session):
        """The derivation Q -> Q' -> Q'' -> Q''' -> Q'''' uses E2, E1, E3, E4
        (and E5 at implementation time); all of them must appear in the
        optimization trace."""
        optimization = doc_session.optimize(QUERY)
        fired = set(optimization.trace.rules_applied())
        assert any(name.startswith("E1-path-method") for name in fired)
        assert any(name.startswith("E2-title-index") for name in fired)
        assert any(name.startswith("inverse-link[Section.document]")
                   for name in fired)
        assert any(name.startswith("inverse-link[Paragraph.section]")
                   for name in fired)
        assert any(name.startswith("E5-retrieve-by-string") for name in fired)

    def test_optimized_beats_naive_by_large_factor(self, doc_session):
        naive = doc_session.execute_naive(QUERY)
        optimized = doc_session.execute(QUERY)
        assert optimized.work["total_cost_units"] * 10 < \
            naive.work["total_cost_units"]
        assert optimized.work["external_method_calls"] * 10 < \
            naive.work["external_method_calls"]

    def test_structural_optimizer_cannot_derive_pq(self, structural_session):
        """"There is no way for the optimizer to derive the final query plan
        from the user's query without having schema-specific information on
        the semantics of the methods." """
        result = structural_session.execute(QUERY)
        nodes = list(walk_physical(result.physical_plan))
        assert any(isinstance(node, ClassScan) for node in nodes)
        plan_text = " ".join(node.describe() for node in nodes)
        assert "retrieve_by_string" not in plan_text
        # the per-paragraph external method is still being called
        assert result.work["ir_calls"] > 1


class TestExampleQueries:
    def test_example_1_method_join_becomes_hash_join(self, doc_session):
        """Example 1: sameDocument as a join predicate, rewritten to an
        attribute equi-join."""
        result = doc_session.execute(same_document_join_query().text)
        nodes = list(walk_physical(result.physical_plan))
        assert any(isinstance(node, HashJoin) for node in nodes)
        assert not any(isinstance(node, NestedLoopJoin) for node in nodes)
        # sameDocument itself is never invoked in the optimized plan
        assert doc_session.database.statistics.calls_of(
            "Paragraph", "sameDocument") >= 0  # counter exists
        naive = doc_session.execute_naive(same_document_join_query().text)
        assert naive.value_set() == result.value_set()

    def test_example_2_dependent_range(self, doc_session):
        """Example 2: a method in the FROM clause (dependent range)."""
        query = ("ACCESS d.title FROM d IN Document, p IN d->paragraphs() "
                 f"WHERE p->contains_string('{QUERY_TERM}')")
        naive = doc_session.execute_naive(query)
        optimized = doc_session.execute(query)
        assert naive.value_set() == optimized.value_set()
        assert TARGET_TITLE in optimized.value_set()

    def test_example_3_methods_in_access_clause(self, doc_session):
        """Example 3: methods in the ACCESS clause build the output tuples."""
        result = doc_session.execute(
            "ACCESS [doc: d.title, paras: d->paragraphs()] FROM d IN Document")
        assert len(result) == doc_session.database.extension_size("Document")
        for row_value in result.values:
            assert set(row_value.keys()) == {"doc", "paras"}
            assert len(row_value["paras"]) == 20

    def test_implication_example_reduces_wordcount_calls(self, doc_session):
        """Section 4.2's implication example: the precomputed largeParagraphs
        set bounds the number of wordCount invocations."""
        db = doc_session.database
        db.reset_statistics()
        result = doc_session.execute(large_paragraph_query().text)
        wordcount_calls = db.statistics.calls_of("Paragraph", "wordCount")
        total_paragraphs = db.extension_size("Paragraph")
        assert wordcount_calls < total_paragraphs
        # correctness: exactly the paragraphs above the threshold
        naive = doc_session.execute_naive(large_paragraph_query().text)
        assert naive.value_set() == result.value_set()


class TestTransformationChainOnTheLogicalLevel:
    def test_title_condition_is_rewritten_to_navigation(self, doc_session):
        """After E2+E3+E4 the title condition becomes
        ``p IS-IN select_by_index(...).sections.paragraphs``; the chosen
        logical form must contain that navigation expression.  (The E5
        rewrite of the contains_string conjunct is an *implementation* rule,
        so it appears in the physical plan, which the PQ-shape test checks.)"""
        optimization = doc_session.optimize(QUERY)
        from repro.algebra.printer import format_inline
        chosen = format_inline(optimization.best_logical)
        assert "select_by_index" in chosen
        assert ".sections.paragraphs" in chosen
        assert "title ==" not in chosen  # the equality was rewritten away

    def test_explicit_pq_logical_form_is_among_the_alternatives(self, doc_session):
        """The fully rewritten logical form — an ExpressionSource for
        retrieve_by_string restricted by the navigation set — is generated
        during exploration (the paper's plan PQ on the logical level)."""
        from repro.algebra.printer import format_inline
        optimization = doc_session.optimize(QUERY)
        rendered = [format_inline(alternative)
                    for alternative in optimization.logical_alternatives]
        assert any("source<" in text and "retrieve_by_string" in text
                   for text in rendered)

    def test_alternatives_include_the_original_plan(self, doc_session):
        optimization = doc_session.optimize(QUERY)
        assert optimization.original_logical in optimization.logical_alternatives

    def test_search_space_is_modest(self, doc_session):
        """The exhaustive exploration stays small for the paper's query."""
        optimization = doc_session.optimize(QUERY)
        assert not optimization.statistics.exploration_truncated
        assert optimization.statistics.logical_plans_explored < 500
        assert optimization.statistics.optimization_seconds < 2.0
