"""Shared fixtures for the test suite.

The expensive fixtures (synthetic databases, sessions with generated
optimizers) are session-scoped; tests must not mutate them.  Tests that need
a mutable database build their own small one.
"""

from __future__ import annotations

import pytest

from repro.datamodel.database import Database
from repro.optimizer.knowledge import SchemaKnowledge
from repro.session import Session
from repro.workloads import (
    document_knowledge,
    document_schema,
    generate_document_database,
)
from repro.workloads.university import (
    generate_university_database,
    university_knowledge,
)


@pytest.fixture(scope="session")
def doc_schema():
    """The paper's Document/Section/Paragraph schema."""
    return document_schema()


@pytest.fixture(scope="session")
def doc_database() -> Database:
    """A small synthetic document database (8 documents, 160 paragraphs)."""
    return generate_document_database(n_documents=8)


@pytest.fixture(scope="session")
def doc_knowledge(doc_database) -> SchemaKnowledge:
    return document_knowledge(doc_database.schema)


@pytest.fixture(scope="session")
def doc_session(doc_database, doc_knowledge) -> Session:
    """A session on the document database with full semantic knowledge."""
    return Session(doc_database, knowledge=doc_knowledge)


@pytest.fixture(scope="session")
def structural_session(doc_database, doc_knowledge) -> Session:
    """A session whose optimizer has only the predefined structural rules."""
    return Session(doc_database, knowledge=doc_knowledge,
                   exclude_tags=("semantic",))


@pytest.fixture(scope="session")
def uni_database() -> Database:
    return generate_university_database(n_departments=4,
                                        students_per_department=20)


@pytest.fixture(scope="session")
def uni_session(uni_database) -> Session:
    return Session(uni_database,
                   knowledge=university_knowledge(uni_database.schema))


@pytest.fixture()
def fresh_doc_database() -> Database:
    """A tiny, mutable document database for tests that write."""
    return generate_document_database(n_documents=2)
