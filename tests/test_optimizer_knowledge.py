"""Tests for the four semantic-knowledge kinds and their rule derivation."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import BinaryOp, Const, Var
from repro.algebra.operators import (
    ExpressionSource,
    Get,
    Join,
    Map,
    Select,
)
from repro.errors import RuleDerivationError
from repro.optimizer.knowledge import (
    ConditionEquivalence,
    ConditionImplication,
    ExpressionEquivalence,
    QueryMethodEquivalence,
    SchemaKnowledge,
    equivalences_from_inverse_link,
)
from repro.optimizer.rules import RuleContext
from repro.physical.plans import ClassScan, ExpressionSetScan, SetProbeFilter
from repro.vql.parser import parse_expression

GET_P = Get("p", "Paragraph")


@pytest.fixture()
def context(doc_database):
    return RuleContext(doc_database.schema, doc_database)


def apply_all(rule_set, plan, context):
    """Apply every transformation rule of *rule_set* at the plan root."""
    results = []
    for rule in rule_set.transformations:
        results.extend(rule.apply(plan, context))
    return results


class TestExpressionEquivalence:
    def equivalence(self):
        return ExpressionEquivalence(
            class_name="Paragraph", variable="p",
            left="p->document()", right="p.section.document", name="E1")

    def test_requires_bound_variable_on_both_sides(self):
        with pytest.raises(RuleDerivationError):
            ExpressionEquivalence("Paragraph", "p", "q->document()",
                                  "p.section.document")

    def test_derives_two_directions(self, doc_schema):
        rules = self.equivalence().derive_rules(doc_schema)
        assert len(rules.transformations) == 2
        assert all("semantic" in rule.tags for rule in rules.transformations)

    def test_rewrites_method_to_path_inside_map(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        plan = Map("t", parse_expression("p->document()"), GET_P)
        results = apply_all(rules, plan, context)
        assert Map("t", parse_expression("p.section.document"), GET_P) in results

    def test_rewrites_path_to_method_in_reverse_direction(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        plan = Map("t", parse_expression("p.section.document"), GET_P)
        results = apply_all(rules, plan, context)
        assert Map("t", parse_expression("p->document()"), GET_P) in results

    def test_rewrites_nested_occurrence_in_condition(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        plan = Select(parse_expression("p->document().title == 'x'"), GET_P)
        results = apply_all(rules, plan, context)
        assert Select(parse_expression("p.section.document.title == 'x'"),
                      GET_P) in results

    def test_class_guard_blocks_wrong_receiver(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        # d ranges over Document, whose title is not a Paragraph: the rule
        # must not fire on a Document-typed receiver.
        plan = Map("t", parse_expression("d.section.document"),
                   Get("d", "Document"))
        results = apply_all(rules, plan, context)
        assert results == []

    def test_no_rules_without_parameters_are_lost(self, doc_schema):
        # A one-sided parameter restricts the usable directions.
        equivalence = ExpressionEquivalence(
            class_name="Document", variable="d",
            left="d.title", right="d->render(fmt)", name="one-sided",
            parameter_classes={})
        rules = equivalence.derive_rules(doc_schema)
        # only the direction whose pattern contains all template variables
        assert len(rules.transformations) == 1
        assert "[<-]" in rules.transformations[0].name


class TestConditionEquivalence:
    def test_rejects_non_boolean_pair(self):
        with pytest.raises(RuleDerivationError):
            ConditionEquivalence("Paragraph", "p", "p.number", "p.section")

    def test_accepts_method_call_on_one_side(self):
        ConditionEquivalence("Paragraph", "p", "p->sameDocument(q)",
                             "p->document() == q->document()",
                             parameter_classes={"q": "Paragraph"})

    def test_inverse_link_rewrite(self, doc_schema, context):
        equivalence = ConditionEquivalence(
            class_name="Paragraph", variable="x",
            left="x.section IS-IN Ys",
            right="x IS-IN Ys.paragraphs",
            parameter_classes={"Ys": "Section"}, name="E4")
        rules = equivalence.derive_rules(doc_schema)
        condition = parse_expression("p.section IS-IN d.sections")
        plan = Select(condition, Join(Const(True), GET_P, Get("d", "Document")))
        results = apply_all(rules, plan, context)
        rewritten = Select(parse_expression("p IS-IN d.sections.paragraphs"),
                           Join(Const(True), GET_P, Get("d", "Document")))
        assert rewritten in results

    def test_parameter_class_guard(self, doc_schema, context):
        equivalence = ConditionEquivalence(
            class_name="Paragraph", variable="x",
            left="x.section IS-IN Ys",
            right="x IS-IN Ys.paragraphs",
            parameter_classes={"Ys": "Section"}, name="E4")
        rules = equivalence.derive_rules(doc_schema)
        # Ys bound to a set of Documents must NOT trigger the rewrite
        plan = Select(parse_expression("p.section IS-IN d.largeParagraphs"),
                      Join(Const(True), GET_P, Get("d", "Document")))
        assert apply_all(rules, plan, context) == []


class TestEquivalencesFromInverseLinks:
    def test_two_rules_per_link(self, doc_schema):
        link = doc_schema.find_inverse("Section", "document")
        equivalences = equivalences_from_inverse_link(link)
        # only the single-valued side generates a rule (Section.document);
        # the reversed direction starts from the set-valued Document.sections
        assert len(equivalences) == 1
        assert equivalences[0].class_name == "Section"

    def test_derive_from_inverse_links_adds_equivalences(self, doc_schema):
        knowledge = SchemaKnowledge(doc_schema)
        knowledge.derive_from_inverse_links()
        assert len(knowledge.condition_equivalences) == 2  # one per declared link


class TestConditionImplication:
    def implication(self):
        return ConditionImplication(
            class_name="Paragraph", variable="p",
            antecedent="p->wordCount() > 40",
            consequent="p IS-IN p->document().largeParagraphs", name="I1")

    def test_requires_variable_on_both_sides(self):
        with pytest.raises(RuleDerivationError):
            ConditionImplication("Paragraph", "p", "q->wordCount() > 1",
                                 "p IS-IN p->document().largeParagraphs")
        with pytest.raises(RuleDerivationError):
            ConditionImplication("Paragraph", "p", "p->wordCount() > 1",
                                 "q IS-IN q->document().largeParagraphs")

    def test_adds_consequent_as_conjunct(self, doc_schema, context):
        rules = self.implication().derive_rules(doc_schema)
        assert rules.transformations[0].apply_once
        plan = Select(parse_expression("p->wordCount() > 40"), GET_P)
        (result,) = apply_all(rules, plan, context)
        conjunct_texts = str(result.condition)
        assert "largeParagraphs" in conjunct_texts
        assert "wordCount" in conjunct_texts

    def test_does_not_reapply_when_consequent_present(self, doc_schema, context):
        rules = self.implication().derive_rules(doc_schema)
        plan = Select(parse_expression("p->wordCount() > 40"), GET_P)
        (once,) = apply_all(rules, plan, context)
        assert apply_all(rules, once, context) == []

    def test_ignores_non_matching_antecedent(self, doc_schema, context):
        rules = self.implication().derive_rules(doc_schema)
        plan = Select(parse_expression("p->wordCount() > 10"), GET_P)
        assert apply_all(rules, plan, context) == []


class TestQueryMethodEquivalence:
    def equivalence(self):
        return QueryMethodEquivalence(
            query="ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)",
            method_call="Paragraph->retrieve_by_string(s)", name="E5")

    def test_requires_single_class_range(self, doc_schema):
        bad = QueryMethodEquivalence(
            query="ACCESS p FROM p IN Paragraph, q IN Paragraph "
                  "WHERE p->sameDocument(q)",
            method_call="Paragraph->retrieve_by_string(s)")
        with pytest.raises(RuleDerivationError):
            bad.derive_rules(doc_schema)

    def test_requires_where_clause(self, doc_schema):
        bad = QueryMethodEquivalence(
            query="ACCESS p FROM p IN Paragraph",
            method_call="Paragraph->retrieve_by_string(s)")
        with pytest.raises(RuleDerivationError):
            bad.derive_rules(doc_schema)

    def test_requires_access_of_range_variable(self, doc_schema):
        bad = QueryMethodEquivalence(
            query="ACCESS p.number FROM p IN Paragraph WHERE p->contains_string(s)",
            method_call="Paragraph->retrieve_by_string(s)")
        with pytest.raises(RuleDerivationError):
            bad.derive_rules(doc_schema)

    def test_rejects_unbound_method_parameters(self, doc_schema):
        bad = QueryMethodEquivalence(
            query="ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)",
            method_call="Paragraph->retrieve_by_string(other)")
        with pytest.raises(RuleDerivationError):
            bad.derive_rules(doc_schema)

    def test_derives_logical_and_implementation_rules(self, doc_schema):
        rules = self.equivalence().derive_rules(doc_schema)
        assert len(rules.transformations) == 1
        assert len(rules.implementations) == 1

    def test_logical_rule_replaces_select_over_get(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        plan = Select(parse_expression("p->contains_string('Implementation')"), GET_P)
        (source,) = apply_all(rules, plan, context)
        assert isinstance(source, ExpressionSource)
        assert "retrieve_by_string" in str(source.expression)
        assert "'Implementation'" in str(source.expression)

    def test_implementation_rule_produces_probe_and_scan(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        plan = Select(parse_expression("p->contains_string('x')"), GET_P)
        implementations = list(rules.implementations[0].implement(
            plan, (ClassScan("p", "Paragraph"),), context))
        assert any(isinstance(p, SetProbeFilter) for p in implementations)
        assert any(isinstance(p, ExpressionSetScan) for p in implementations)

    def test_implementation_rule_probe_only_for_general_input(self, doc_schema,
                                                              context):
        rules = self.equivalence().derive_rules(doc_schema)
        inner = Select(parse_expression("p.number == 1"), GET_P)
        plan = Select(parse_expression("p->contains_string('x')"), inner)
        implementations = list(rules.implementations[0].implement(
            plan, (ClassScan("p", "Paragraph"),), context))
        assert all(isinstance(p, SetProbeFilter) for p in implementations)

    def test_does_not_fire_on_different_condition(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        plan = Select(parse_expression("p.number == 1"), GET_P)
        assert apply_all(rules, plan, context) == []

    def test_parameter_must_be_reference_free(self, doc_schema, context):
        rules = self.equivalence().derive_rules(doc_schema)
        # the argument mentions the tuple reference q -> cannot hoist
        plan = Select(parse_expression("p->contains_string(q.content)"),
                      Join(Const(True), GET_P, Get("q", "Paragraph")))
        assert apply_all(rules, plan, context) == []


class TestSchemaKnowledge:
    def test_add_dispatches_on_type(self, doc_schema):
        knowledge = SchemaKnowledge(doc_schema)
        knowledge.add(ExpressionEquivalence("Paragraph", "p", "p->document()",
                                            "p.section.document"))
        knowledge.add(ConditionImplication(
            "Paragraph", "p", "p->wordCount() > 40",
            "p IS-IN p->document().largeParagraphs"))
        knowledge.add(QueryMethodEquivalence(
            query="ACCESS p FROM p IN Paragraph WHERE p->contains_string(s)",
            method_call="Paragraph->retrieve_by_string(s)"))
        assert len(knowledge) == 3
        with pytest.raises(TypeError):
            knowledge.add("not knowledge")

    def test_derive_rule_set_collects_all_rules(self, doc_knowledge):
        rules = doc_knowledge.derive_rule_set()
        assert len(rules.transformations) >= 8
        assert len(rules.implementations) >= 1
        assert all("semantic" in rule.tags
                   for rule in rules.transformations + rules.implementations)

    def test_describe_lists_items(self, doc_knowledge):
        text = doc_knowledge.describe()
        assert "E1-path-method" in text
        assert "E5-retrieve-by-string" in text
