"""Tests for the compiled pipelined engine, the expression compiler and the
index access paths (IndexEqScan / IndexRangeScan selection and execution)."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import BinaryOp, Const, Var
from repro.algebra.operators import Get, Project, Select
from repro.datamodel.database import Database
from repro.datamodel.schema import ClassDef, PropertyDef, Schema
from repro.datamodel.types import INT, STRING
from repro.errors import ExecutionError
from repro.physical.compiler import ExpressionCompiler
from repro.physical.evaluator import evaluate
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.naive import naive_implementation
from repro.physical.plans import (
    ClassScan,
    Filter,
    IndexEqScan,
    IndexRangeScan,
    walk_physical,
)
from repro.session import Session
from repro.vql.parser import parse_expression
from repro.workloads import (
    TARGET_TITLE,
    document_knowledge,
    document_workload,
    generate_document_database,
)


# ----------------------------------------------------------------------
# expression compiler
# ----------------------------------------------------------------------
class TestExpressionCompiler:
    @pytest.mark.parametrize("text,row", [
        ("1 + 2 * 3", {}),
        ("x - 1", {"x": 3}),
        ("-x", {"x": 3}),
        ("1 == 1", {}),
        ("x < 3", {"x": None}),
        ("'a' == 'a'", {}),
        ("TRUE AND FALSE", {}),
        ("NOT TRUE", {}),
        ("x IS-IN s", {"x": 1, "s": {1, 2}}),
        ("x IS-IN s", {"x": 5, "s": None}),
    ])
    def test_compiled_agrees_with_interpreter(self, doc_database, text, row):
        expression = parse_expression(text)
        compiled = ExpressionCompiler(doc_database).compile(expression)
        assert compiled(row) == evaluate(expression, row, doc_database)

    def test_property_and_method_access(self, doc_database):
        paragraph = doc_database.extension("Paragraph")[0]
        row = {"p": paragraph}
        for text in ("p.number", "p.content", "p->document()",
                     "(p->document()).title"):
            expression = parse_expression(text)
            compiled = ExpressionCompiler(doc_database).compile(expression)
            assert compiled(row) == evaluate(expression, row, doc_database)

    def test_lifted_access_over_sets(self, doc_database):
        document = doc_database.extension("Document")[0]
        row = {"d": document}
        expression = parse_expression("d.sections.paragraphs")
        compiled = ExpressionCompiler(doc_database).compile(expression)
        assert compiled(row) == evaluate(expression, row, doc_database)

    def test_constant_subexpressions_are_hoisted(self, doc_database):
        compiled = ExpressionCompiler(doc_database).compile(
            parse_expression("1 + 2 * 3"))
        assert compiled.constant_value == 7
        assert compiled({}) == 7

    def test_failing_pure_expression_raises_at_evaluation(self, doc_database):
        expression = parse_expression("1 / 0")
        # Compilation must not raise; evaluation fails like the interpreter.
        compiled = ExpressionCompiler(doc_database).compile(expression)
        with pytest.raises(ZeroDivisionError):
            compiled({})

    def test_membership_against_constant_collection(self, doc_database):
        expression = BinaryOp("IS-IN", Var("x"), Const([1, 2, 3]))
        compiled = ExpressionCompiler(doc_database).compile(expression)
        assert compiled({"x": 2}) is True
        assert compiled({"x": 9}) is False

    def test_unbound_reference_raises(self, doc_database):
        compiled = ExpressionCompiler(doc_database).compile(Var("missing"))
        with pytest.raises(ExecutionError):
            compiled({})

    def test_compiled_work_counters_match_interpreter(self, doc_database):
        expression = parse_expression("(p->document()).title")
        paragraph = doc_database.extension("Paragraph")[0]
        row = {"p": paragraph}

        doc_database.reset_statistics()
        evaluate(expression, row, doc_database)
        interpreted = doc_database.work_snapshot()

        doc_database.reset_statistics()
        ExpressionCompiler(doc_database).compile(expression)(row)
        compiled = doc_database.work_snapshot()

        assert compiled == interpreted


# ----------------------------------------------------------------------
# pipelined executor vs the reference interpreter
# ----------------------------------------------------------------------
class TestPipelinedExecutor:
    def test_workload_queries_agree_with_interpreter(self, doc_session):
        for query in document_workload():
            translation = doc_session.translate(query.text)
            for plan in (naive_implementation(translation.plan),
                         doc_session.optimizer.optimize(translation.plan).best_plan):
                compiled = execute_plan(plan, doc_session.database)
                interpreted = execute_plan_interpreted(plan, doc_session.database)
                assert compiled == interpreted, query.name

    def test_work_counters_agree_with_interpreter(self, doc_session):
        translation = doc_session.translate(
            "ACCESS p FROM p IN Paragraph "
            "WHERE p->contains_string('Implementation')")
        plan = naive_implementation(translation.plan)
        database = doc_session.database

        database.reset_statistics()
        execute_plan_interpreted(plan, database)
        interpreted = database.work_snapshot()

        database.reset_statistics()
        execute_plan(plan, database)
        compiled = database.work_snapshot()

        assert compiled == interpreted

    def test_unknown_operator_raises(self, doc_database):
        class Bogus:
            pass

        with pytest.raises(ExecutionError):
            execute_plan(Bogus(), doc_database)


# ----------------------------------------------------------------------
# index access paths: execution
# ----------------------------------------------------------------------
class TestIndexScanExecution:
    def test_index_eq_scan_matches_filter(self, doc_database):
        scan = IndexEqScan("d", "Document", "title", TARGET_TITLE)
        condition = parse_expression(f"d.title == '{TARGET_TITLE}'")
        filtered = Filter(condition, ClassScan("d", "Document"))
        via_index = execute_plan(scan, doc_database)
        via_filter = execute_plan(filtered, doc_database)
        assert via_index
        assert {row["d"] for row in via_index} == {row["d"] for row in via_filter}
        # both engines agree on the new operator
        assert execute_plan_interpreted(scan, doc_database) == via_index

    def test_index_eq_scan_without_index_raises(self, doc_database):
        scan = IndexEqScan("p", "Paragraph", "number", 1)
        with pytest.raises(ExecutionError):
            execute_plan(scan, doc_database)

    def test_index_range_scan_matches_filter(self):
        database = generate_document_database(n_documents=3)
        database.create_sorted_index("Paragraph", "number")
        scan = IndexRangeScan("p", "Paragraph", "number", low=2, high=4,
                              include_low=True, include_high=False)
        condition = parse_expression("p.number >= 2 AND p.number < 4")
        filtered = Filter(condition, ClassScan("p", "Paragraph"))
        via_index = execute_plan(scan, database)
        via_filter = execute_plan(filtered, database)
        assert via_index
        assert {row["p"] for row in via_index} == {row["p"] for row in via_filter}
        assert execute_plan_interpreted(scan, database) == via_index

    def test_index_range_scan_requires_sorted_index(self):
        database = generate_document_database(n_documents=2)
        # Document.title has a *hash* index; range scans must reject it.
        scan = IndexRangeScan("d", "Document", "title", low="A")
        with pytest.raises(ExecutionError):
            execute_plan(scan, database)

    def test_index_covers_objects_created_after_index(self):
        schema = Schema("tiny")
        item = ClassDef("Item")
        item.add_property(PropertyDef("name", STRING))
        item.add_property(PropertyDef("size", INT))
        schema.add_class(item)
        database = Database(schema)
        database.create(  # indexed at backfill time
            "Item", name="early", size=1)
        database.create_hash_index("Item", "name")
        late = database.create("Item", name="late", size=2)

        rows = execute_plan(IndexEqScan("i", "Item", "name", "late"), database)
        assert [row["i"] for row in rows] == [late]

    def test_none_values_are_not_indexed(self):
        """Creating/updating objects with None values must not crash sorted
        indexes (None is unorderable) and None never matches an index scan,
        mirroring the evaluator's None comparison semantics."""
        schema = Schema("tiny")
        base = ClassDef("Base")
        base.add_property(PropertyDef("n", INT))
        schema.add_class(base)
        sub = ClassDef("Sub", superclass="Base")
        schema.add_class(sub)
        database = Database(schema)
        kept = database.create("Base", n=5)
        database.create_sorted_index("Base", "n")

        # a subclass instance with an explicit None reaches the ancestor
        # index's maintenance path — it must be skipped, not inserted
        none_sub = database.create("Sub", n=None)
        rows = execute_plan(IndexRangeScan("b", "Base", "n", low=0), database)
        assert [row["b"] for row in rows] == [kept]

        # transitions: None -> value inserts, value -> None removes
        database.set_value(none_sub, "n", 7)
        rows = execute_plan(IndexRangeScan("b", "Base", "n", low=6), database)
        assert [row["b"] for row in rows] == [none_sub]
        database.set_value(none_sub, "n", None)
        rows = execute_plan(IndexRangeScan("b", "Base", "n", low=6), database)
        assert rows == []

    def test_index_follows_property_updates(self):
        schema = Schema("tiny")
        item = ClassDef("Item")
        item.add_property(PropertyDef("name", STRING))
        schema.add_class(item)
        database = Database(schema)
        oid = database.create("Item", name="before")
        database.create_hash_index("Item", "name")
        database.set_value(oid, "name", "after")

        assert execute_plan(IndexEqScan("i", "Item", "name", "before"),
                            database) == []
        rows = execute_plan(IndexEqScan("i", "Item", "name", "after"), database)
        assert [row["i"] for row in rows] == [oid]


# ----------------------------------------------------------------------
# index access paths: optimizer selection
# ----------------------------------------------------------------------
class TestIndexScanSelection:
    def test_optimizer_selects_index_eq_scan(self, doc_session):
        """Acceptance: an equality filter on an indexed property is
        implemented by an IndexEqScan, not a full scan + filter."""
        result = doc_session.execute(
            f"ACCESS d FROM d IN Document WHERE d.title == '{TARGET_TITLE}'")
        nodes = list(walk_physical(result.physical_plan))
        assert any(isinstance(node, IndexEqScan) for node in nodes)
        assert not any(isinstance(node, ClassScan) for node in nodes)
        assert len(result.rows) == 1

    def test_index_eq_scan_results_match_naive(self, doc_session):
        query = f"ACCESS d FROM d IN Document WHERE d.title == '{TARGET_TITLE}'"
        optimized = doc_session.execute(query)
        naive = doc_session.execute_naive(query)
        assert optimized.value_set() == naive.value_set()

    def test_optimizer_selects_index_range_scan(self):
        database = generate_document_database(n_documents=4)
        database.create_sorted_index("Paragraph", "number")
        session = Session(database,
                          knowledge=document_knowledge(database.schema))
        result = session.execute(
            "ACCESS p FROM p IN Paragraph WHERE p.number >= 2 AND p.number < 4")
        nodes = list(walk_physical(result.physical_plan))
        scans = [node for node in nodes if isinstance(node, IndexRangeScan)]
        assert scans
        assert scans[0].low == 2 and scans[0].include_low
        assert scans[0].high == 4 and not scans[0].include_high
        assert result.value_set() == session.execute_naive(
            "ACCESS p FROM p IN Paragraph WHERE p.number >= 2 AND p.number < 4"
        ).value_set()

    def test_residual_conjuncts_stay_as_filter(self, doc_session):
        query = (f"ACCESS d FROM d IN Document "
                 f"WHERE d.title == '{TARGET_TITLE}' AND d.author != 'nobody'")
        result = doc_session.execute(query)
        nodes = list(walk_physical(result.physical_plan))
        assert any(isinstance(node, IndexEqScan) for node in nodes)
        assert any(isinstance(node, Filter) for node in nodes)
        assert result.value_set() == doc_session.execute_naive(query).value_set()

    def test_no_index_means_no_index_scan(self, doc_session):
        # Paragraph.number has no index in the generated database.
        result = doc_session.optimize(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1")
        nodes = list(walk_physical(result.best_plan))
        assert not any(isinstance(node, (IndexEqScan, IndexRangeScan))
                       for node in nodes)

    def test_index_scan_beats_select_by_index_method(self, doc_session):
        """The direct index access path is cheaper than the method-
        encapsulated lookup (select_by_index), so the optimizer prefers it."""
        result = doc_session.optimize(
            f"ACCESS d FROM d IN Document WHERE d.title == '{TARGET_TITLE}'")
        assert any(isinstance(node, IndexEqScan)
                   for node in walk_physical(result.best_plan))
        assert "index_eq_scan" in result.explain()
