"""The unified statement API: DDL/DML statements, router, Connection/Cursor.

Covers the statement grammar and analyzer, the router's dispatch through
each entry point (``Session.execute``, ``QueryService.execute``,
``run_query``, ``connect()``), DML planned through the optimizer (index
access paths, bind parameters, plan-cache reuse), the bulk datamodel paths
(``Database.update``, ``Database.create_many``) and the streaming cursor.
"""

from __future__ import annotations

import pytest

from repro import QueryService, Session, connect, run_query
from repro.api.router import StatementResult, StatementRouter
from repro.datamodel.database import Database
from repro.errors import (
    BindingError,
    ServiceError,
    SchemaError,
    TypeMismatchError,
    VQLAnalysisError,
    VQLSyntaxError,
)
from repro.vql.analyzer import analyze_statement
from repro.vql.ast import (
    CreateClassStatement,
    CreateIndexStatement,
    DeleteStatement,
    DropIndexStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)
from repro.vql.parser import parse_statement
from repro.workloads import (
    document_knowledge,
    document_schema,
    generate_document_database,
)


@pytest.fixture()
def database():
    return generate_document_database(n_documents=3)


@pytest.fixture()
def connection(database):
    return connect(database, knowledge=document_knowledge(database.schema))


def fresh_database(n_documents: int = 3) -> Database:
    return generate_document_database(n_documents=n_documents)


# ----------------------------------------------------------------------
# statement parser
# ----------------------------------------------------------------------
class TestStatementParser:
    def test_access_query_is_a_select_statement(self):
        statement = parse_statement("ACCESS p FROM p IN Paragraph")
        assert isinstance(statement, SelectStatement)
        assert statement.query.range_variables == ("p",)

    def test_create_class(self):
        statement = parse_statement(
            "CREATE CLASS Memo ISA Document (body: STRING, refs: {Memo})")
        assert isinstance(statement, CreateClassStatement)
        assert statement.superclass == "Document"
        assert [p.name for p in statement.properties] == ["body", "refs"]
        assert statement.properties[1].is_set

    def test_create_index_kinds(self):
        default = parse_statement("CREATE INDEX ON Document(title)")
        assert isinstance(default, CreateIndexStatement)
        assert default.kind == "hash"
        assert parse_statement(
            "CREATE SORTED INDEX ON Paragraph(number)").kind == "sorted"
        assert parse_statement(
            "CREATE TEXT INDEX ON Paragraph(content)").kind == "text"

    def test_drop_index(self):
        plain = parse_statement("DROP INDEX ON Document(title)")
        assert isinstance(plain, DropIndexStatement) and plain.kind == "index"
        assert parse_statement(
            "DROP TEXT INDEX ON Paragraph(content)").kind == "text"

    def test_statement_words_are_case_insensitive(self):
        statement = parse_statement("create hash index on Document(title)")
        assert isinstance(statement, CreateIndexStatement)

    def test_insert(self):
        statement = parse_statement(
            "INSERT INTO Paragraph (number, content) VALUES (?, :c)")
        assert isinstance(statement, InsertStatement)
        assert [name for name, _ in statement.assignments] == [
            "number", "content"]

    def test_insert_arity_mismatch_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse_statement("INSERT INTO Paragraph (number) VALUES (1, 2)")

    def test_update_with_alias_and_where(self):
        statement = parse_statement(
            "UPDATE Paragraph p SET number = p.number + 1 WHERE p.number > 2")
        assert isinstance(statement, UpdateStatement)
        assert statement.alias == "p"
        assert statement.where is not None

    def test_update_without_alias_uses_default(self):
        statement = parse_statement("UPDATE Paragraph SET number = 0")
        assert statement.alias == "this"
        assert statement.where is None

    def test_delete(self):
        statement = parse_statement(
            "DELETE FROM Paragraph p WHERE p.number == 3")
        assert isinstance(statement, DeleteStatement)
        assert statement.alias == "p"

    def test_assignment_requires_single_equals(self):
        with pytest.raises(VQLSyntaxError):
            parse_statement("UPDATE Paragraph p SET number == 3")

    def test_unknown_statement_word_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse_statement("FROBNICATE Paragraph")

    def test_statement_str_round_trips(self):
        for text in (
                "CREATE CLASS Memo ISA Document (body: STRING)",
                "CREATE SORTED INDEX ON Paragraph(number)",
                "DROP TEXT INDEX ON Paragraph(content)",
                "INSERT INTO Paragraph (number) VALUES (4)",
                "UPDATE Paragraph p SET number = 4 WHERE p.number == 3",
                "DELETE FROM Paragraph p WHERE p.number == 3"):
            statement = parse_statement(text)
            assert parse_statement(str(statement)) == statement


# ----------------------------------------------------------------------
# statement analyzer
# ----------------------------------------------------------------------
class TestStatementAnalyzer:
    def schema(self):
        return document_schema()

    def test_parameters_collected_in_textual_order(self):
        analyzed = analyze_statement(parse_statement(
            "UPDATE Paragraph p SET content = :c WHERE p.number == :n"),
            self.schema())
        assert analyzed.parameters == ("c", "n")

    def test_update_where_query_is_planned_as_access_query(self):
        analyzed = analyze_statement(parse_statement(
            "UPDATE Paragraph p SET number = 1 WHERE p.number == 2"),
            self.schema())
        assert analyzed.query is not None
        assert analyzed.query.query.range_variables == ("p",)

    def test_insert_unknown_property_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "INSERT INTO Paragraph (nope) VALUES (1)"), self.schema())

    def test_insert_type_mismatch_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "INSERT INTO Paragraph (number) VALUES ('text')"),
                self.schema())

    def test_update_duplicate_assignment_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "UPDATE Paragraph p SET number = 1, number = 2"),
                self.schema())

    def test_update_value_may_reference_the_alias(self):
        analyzed = analyze_statement(parse_statement(
            "UPDATE Paragraph p SET number = p.number + 1"), self.schema())
        assert analyzed.kind == "update"

    def test_update_value_unbound_variable_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "UPDATE Paragraph p SET number = q.number"), self.schema())

    def test_alias_shadowing_a_class_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "DELETE FROM Paragraph Document"), self.schema())

    def test_create_existing_class_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "CREATE CLASS Document"), self.schema())

    def test_create_class_unknown_type_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "CREATE CLASS Memo (body: Blob)"), self.schema())

    def test_index_on_unknown_property_rejected(self):
        with pytest.raises(VQLAnalysisError):
            analyze_statement(parse_statement(
                "CREATE INDEX ON Document(nope)"), self.schema())


# ----------------------------------------------------------------------
# the three legacy entry points converge on the router
# ----------------------------------------------------------------------
class TestEntryPointConvergence:
    STATEMENT = "INSERT INTO Document (title) VALUES (:t)"

    def test_session_executes_dml(self, database):
        session = Session(database)
        result = session.execute(self.STATEMENT, parameters={"t": "s"})
        assert isinstance(result, StatementResult)
        assert result.rowcount == 1
        assert database.value(result.lastoid, "title") == "s"

    def test_service_executes_dml(self, database):
        service = QueryService(database)
        result = service.execute(self.STATEMENT, {"t": "q"})
        assert isinstance(result, StatementResult)
        assert database.value(result.lastoid, "title") == "q"

    def test_run_query_executes_dml(self, database):
        result = run_query(database, self.STATEMENT, parameters={"t": "r"})
        assert isinstance(result, StatementResult)
        assert database.value(result.lastoid, "title") == "r"

    def test_all_entry_points_agree_on_queries(self, database):
        text = "ACCESS d.title FROM d IN Document WHERE d.title == :t"
        parameters = {"t": "Query Optimization"}
        session = Session(database)
        service = QueryService(database)
        connection = connect(database, service=service)
        expected = session.execute(text, parameters=parameters).value_set()
        assert service.execute(text, parameters).value_set() == expected
        assert run_query(database, text,
                         parameters=parameters).value_set() == expected
        cursor = connection.execute(text, parameters)
        assert set(cursor.fetchall()) == {v for v in expected}


# ----------------------------------------------------------------------
# DML execution semantics
# ----------------------------------------------------------------------
class TestDML:
    def test_update_hits_index_access_path(self, database):
        database.create_hash_index("Paragraph", "number")
        connection = connect(database)
        plan = connection.explain(
            "UPDATE Paragraph p SET content = 'x' WHERE p.number == 3")
        assert "index_eq_scan" in plan
        assert "WHERE clause planned as a query" in plan

    def test_update_range_uses_sorted_index(self, database):
        database.create_sorted_index("Paragraph", "number")
        connection = connect(database)
        plan = connection.explain(
            "DELETE FROM Paragraph p WHERE p.number > 3")
        assert "index_range_scan" in plan

    def test_update_applies_row_dependent_expression(self, database):
        connection = connect(database)
        before = {oid: database.value(oid, "number")
                  for oid in database.extension("Paragraph")}
        result = connection.execute(
            "UPDATE Paragraph p SET number = p.number + 10").rowcount
        assert result == len(before)
        for oid, number in before.items():
            assert database.value(oid, "number") == number + 10

    def test_update_without_where_touches_every_instance(self, database):
        connection = connect(database)
        count = connection.execute(
            "UPDATE Section s SET title = 'renamed'").rowcount
        assert count == len(database.extension("Section"))

    def test_delete_unwinds_extension_and_indexes(self, database):
        database.create_hash_index("Paragraph", "number")
        connection = connect(database)
        index = database.indexes.get("Paragraph", "number")
        victims = index.lookup(1)
        assert victims
        result = connection.execute(
            "DELETE FROM Paragraph p WHERE p.number == 1")
        assert result.rowcount == len(victims)
        assert index.lookup(1) == set()
        assert all(not database.exists(oid) for oid in victims)

    def test_mutations_feed_plan_cache_invalidation(self, database):
        service = QueryService(database)
        text = "ACCESS d FROM d IN Document"
        service.execute(text)
        assert service.execute(text).metrics.cache_hit
        before = len(service.execute(text))
        # a bulk INSERT beyond the drift threshold re-plans and sees the rows
        n_bulk = database.object_count()
        service.router.executemany(
            "INSERT INTO Document (title) VALUES (?)",
            [[f"bulk {i}"] for i in range(n_bulk)])
        after = service.execute(text)
        assert not after.metrics.cache_hit
        assert len(after) == before + n_bulk

    def test_insert_validates_types(self, database):
        connection = connect(database)
        with pytest.raises(TypeMismatchError):
            connection.execute(
                "INSERT INTO Document (title) VALUES (?)", [42])

    def test_missing_parameter_rejected(self, database):
        connection = connect(database)
        with pytest.raises(BindingError):
            connection.execute("INSERT INTO Document (title) VALUES (:t)")

    def test_executemany_update_reuses_one_cached_plan(self, database):
        service = QueryService(database)
        inserts = service.cache.statistics.inserts
        service.router.executemany(
            "UPDATE Document d SET author = :a WHERE d.title == :t",
            [{"a": "x", "t": "Document 1"},
             {"a": "y", "t": "Document 2"},
             {"a": "z", "t": "Document 1"}])
        # one WHERE-plan build serves the whole batch
        assert service.cache.statistics.inserts == inserts + 1


# ----------------------------------------------------------------------
# DDL statements
# ----------------------------------------------------------------------
class TestDDL:
    def test_create_class_and_insert_into_it(self, database):
        connection = connect(database)
        connection.execute(
            "CREATE CLASS Memo ISA Document (body: STRING, priority: INT)")
        assert database.schema.has_class("Memo")
        created = connection.execute(
            "INSERT INTO Memo (title, body, priority) VALUES (:t, :b, 1)",
            {"t": "memo-1", "b": "remember"})
        oid = created.lastoid
        # inherited property and deep extension both work
        assert database.value(oid, "title") == "memo-1"
        assert oid in database.extension("Document")
        values = connection.execute(
            "ACCESS m.body FROM m IN Memo").fetchall()
        assert values == ["remember"]

    def test_create_class_bumps_schema_version(self, database):
        version = database.versions.schema
        connect(database).execute("CREATE CLASS Tag (label: STRING)")
        assert database.versions.schema == version + 1

    def test_index_ddl_round_trip(self, database):
        connection = connect(database)
        connection.execute("CREATE SORTED INDEX ON Paragraph(number)")
        assert database.indexes.get("Paragraph", "number").kind == "sorted"
        connection.execute("DROP INDEX ON Paragraph(number)")
        assert database.indexes.get("Paragraph", "number") is None

    def test_text_index_ddl(self, database):
        connection = connect(database)
        connection.execute("CREATE TEXT INDEX ON Section(title)")
        assert database.text_index("Section", "title") is not None
        connection.execute("DROP TEXT INDEX ON Section(title)")
        assert database.text_index("Section", "title") is None

    def test_duplicate_class_rejected_at_execution(self, database):
        connection = connect(database)
        connection.execute("CREATE CLASS Tag (label: STRING)")
        with pytest.raises((VQLAnalysisError, SchemaError)):
            connection.execute("CREATE CLASS Tag (label: STRING)")

    def test_statement_cache_refreshes_after_schema_ddl(self, database):
        connection = connect(database)
        text = "ACCESS t.label FROM t IN Tag"
        with pytest.raises(VQLAnalysisError):
            connection.execute(text)
        connection.execute("CREATE CLASS Tag (label: STRING)")
        connection.execute("INSERT INTO Tag (label) VALUES ('ok')")
        assert connection.execute(text).fetchall() == ["ok"]

    def test_connection_index_helpers_share_ddl_helper(self, database):
        connection = connect(database)
        connection.create_index("Paragraph", "number", kind="sorted")
        assert database.indexes.get("Paragraph", "number").kind == "sorted"
        connection.drop_index("Paragraph", "number")
        assert database.indexes.get("Paragraph", "number") is None


# ----------------------------------------------------------------------
# Connection / Cursor facade
# ----------------------------------------------------------------------
class TestConnectionCursor:
    QUERY = "ACCESS p.number FROM p IN Paragraph WHERE p.number <= :n"

    def test_cursor_streams_lazily(self, connection):
        cursor = connection.execute(self.QUERY, {"n": 3})
        assert cursor.rowcount == -1  # streaming: unknown up front
        assert cursor.description[0][0] == "__result"
        first = cursor.fetchone()
        assert first in (1, 2, 3)
        rest = cursor.fetchall()
        assert set([first, *rest]) == {1, 2, 3}
        assert cursor.fetchone() is None

    def test_fetchmany_respects_arraysize(self, connection):
        cursor = connection.cursor()
        cursor.arraysize = 2
        cursor.execute("ACCESS p FROM p IN Paragraph")
        assert len(cursor.fetchmany()) == 2
        assert len(cursor.fetchmany(5)) == 5

    def test_cursor_iteration(self, connection):
        values = [v for v in connection.execute(self.QUERY, {"n": 2})]
        assert sorted(values) == [1, 2]

    def test_cursor_results_match_session(self, database, connection):
        session = Session(database,
                          knowledge=document_knowledge(database.schema))
        text = ("ACCESS p FROM p IN Paragraph "
                "WHERE p->contains_string('Implementation')")
        expected = sorted(session.execute(text).values)
        assert sorted(connection.execute(text).fetchall()) == expected

    def test_two_streams_interleave_with_distinct_bindings(self, connection):
        a = connection.execute(self.QUERY, {"n": 1})
        b = connection.execute(self.QUERY, {"n": 2})
        collected_a, collected_b = [], []
        while True:
            row_a, row_b = a.fetchone(), b.fetchone()
            if row_a is None and row_b is None:
                break
            if row_a is not None:
                collected_a.append(row_a)
            if row_b is not None:
                collected_b.append(row_b)
        assert collected_a == [1]
        assert sorted(collected_b) == [1, 2]

    def test_fetch_without_result_set_raises(self, connection):
        cursor = connection.cursor()
        with pytest.raises(ServiceError):
            cursor.fetchone()
        cursor.execute("INSERT INTO Document (title) VALUES ('x')")
        with pytest.raises(ServiceError):
            cursor.fetchall()

    def test_executemany_insert_bulk(self, database, connection):
        before = database.object_count()
        cursor = connection.cursor()
        cursor.executemany("INSERT INTO Document (title) VALUES (?)",
                           [[f"bulk {i}"] for i in range(25)])
        assert cursor.rowcount == 25
        assert database.object_count() == before + 25

    def test_executemany_rejects_queries(self, connection):
        with pytest.raises(ServiceError):
            connection.executemany("ACCESS d FROM d IN Document", [None])

    def test_closed_cursor_and_connection_raise(self, database):
        connection = connect(database)
        cursor = connection.cursor()
        cursor.close()
        with pytest.raises(ServiceError):
            cursor.execute("ACCESS d FROM d IN Document")
        connection.close()
        with pytest.raises(ServiceError):
            connection.cursor()

    def test_deferred_mode_buffers_until_commit(self, database):
        connection = connect(database, autocommit=False)
        count = len(database.extension("Document"))
        connection.execute("INSERT INTO Document (title) VALUES ('a')")
        connection.execute("INSERT INTO Document (title) VALUES ('b')")
        assert connection.in_transaction
        assert len(database.extension("Document")) == count
        assert connection.commit() == 2
        assert len(database.extension("Document")) == count + 2
        assert not connection.in_transaction

    def test_rollback_discards_buffered_mutations(self, database):
        connection = connect(database, autocommit=False)
        count = database.object_count()
        connection.execute("INSERT INTO Document (title) VALUES ('gone')")
        assert connection.rollback() == 1
        assert connection.commit() == 0
        assert database.object_count() == count

    def test_context_manager_commits_on_clean_exit(self, database):
        count = database.object_count()
        with connect(database, autocommit=False) as connection:
            connection.execute("INSERT INTO Document (title) VALUES ('cm')")
        assert database.object_count() == count + 1

    def test_failed_commit_applies_nothing_and_keeps_the_buffer(self, database):
        connection = connect(database, autocommit=False)
        count = database.object_count()
        connection.execute("INSERT INTO Document (title) VALUES ('first')")
        # fails at apply time: the value does not conform to STRING
        connection.execute("INSERT INTO Section (title) VALUES (:t)",
                           {"t": 42})
        connection.execute("INSERT INTO Document (title) VALUES ('last')")
        with pytest.raises(TypeMismatchError):
            connection.commit()
        # the flush is atomic: the failure undid the already-applied entry
        # and the whole batch stays buffered for a retry or rollback
        assert connection.in_transaction
        assert database.object_count() == count
        assert len(connection.execute(
            "ACCESS d FROM d IN Document WHERE d.title == 'first'"
            ).fetchall()) == 0
        assert connection.rollback() == 3
        assert database.object_count() == count

    def test_concurrent_queries_and_dml_through_the_service(self, database):
        service = QueryService(database)
        requests = []
        for i in range(12):
            if i % 3 == 0:
                requests.append((
                    "INSERT INTO Document (title) VALUES (:t)",
                    {"t": f"concurrent {i}"}))
            else:
                requests.append(("ACCESS d.title FROM d IN Document", None))
        results = service.run_concurrent(requests, workers=4)
        inserts = [r for r in results if isinstance(r, StatementResult)]
        assert len(inserts) == 4
        assert all(r.rowcount == 1 for r in inserts)
        titles = service.execute(
            "ACCESS d.title FROM d IN Document").value_set()
        assert {f"concurrent {i}" for i in (0, 3, 6, 9)} <= titles

    def test_empty_deferred_executemany_is_a_noop(self, database):
        connection = connect(database, autocommit=False)
        connection.executemany(
            "UPDATE Document d SET title = ? WHERE d.title == ?", [])
        assert not connection.in_transaction
        assert connection.commit() == 0
        # and a following commit with real work still flushes cleanly
        connection.execute("INSERT INTO Document (title) VALUES ('after')")
        assert connection.commit() == 1

    def test_none_valued_rows_are_iterable_and_exhaustion_is_explicit(
            self, database, connection):
        connection.execute("INSERT INTO Section (title, number) VALUES "
                           "(:t, 777)", {"t": None})
        cursor = connection.execute(
            "ACCESS s.title FROM s IN Section WHERE s.number == 777")
        assert not cursor.exhausted
        values = [value for value in cursor]
        assert values == [None]  # iteration yields the NULL row
        assert cursor.exhausted
        assert cursor.fetchone() is None

    def test_caret_column_is_correct_after_a_comment(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            parse_statement("ACCESS d /* a comment */ FRM d IN Document")
        error = excinfo.value
        assert error.column == len("ACCESS d /* a comment */ ") + 1
        rendered = str(error)
        assert rendered.splitlines()[-1].index("^") == 2 + error.column - 1

    def test_session_explain_honors_the_naive_flag(self, database):
        session = Session(database)
        naive = session.router.explain(
            "UPDATE Document d SET author = 'x' WHERE d.title == 'y'",
            optimize=False)
        assert "naive physical plan:" in naive
        assert "index_eq_scan" not in naive
        optimized = session.router.explain(
            "UPDATE Document d SET author = 'x' WHERE d.title == 'y'")
        assert "index_eq_scan" in optimized  # title is hash-indexed

    def _racing_router(self, database):
        """A router whose query runner deletes the first matched target
        after the WHERE-query returns — the deterministic version of a
        concurrent writer winning the gap before the apply phase."""
        session = Session(database)
        victims = []

        def run_query(analyzed, parameters, optimize=True):
            result = session._execute_analyzed(analyzed, parameters, optimize)
            if result.rows:
                victim = result.rows[0][result.output_ref]
                database.delete(victim)
                victims.append(victim)
            return result

        return StatementRouter(database, run_query=run_query), victims

    def test_update_skips_targets_deleted_after_the_where_query(
            self, database):
        router, victims = self._racing_router(database)
        result = router.execute(
            "UPDATE Paragraph p SET content = 'raced' WHERE p.number == 1")
        assert victims and victims[0] not in result.oids
        assert result.rowcount == len(result.oids)
        for oid in result.oids:
            assert database.value(oid, "content") == "raced"

    def test_delete_skips_targets_deleted_after_the_where_query(
            self, database):
        router, victims = self._racing_router(database)
        before = len(database.extension("Paragraph"))
        result = router.execute("DELETE FROM Paragraph p WHERE p.number == 2")
        assert victims and victims[0] not in result.oids
        # the raced victim plus the surviving targets are all gone
        assert len(database.extension("Paragraph")) == \
            before - result.rowcount - 1

    def test_streamed_queries_enter_the_service_metrics(self, database):
        service = QueryService(database)
        connection = connect(database, service=service)
        connection.execute("ACCESS d FROM d IN Document").fetchall()
        snapshot = service.metrics.snapshot()
        assert snapshot["queries"] == 1
        assert snapshot["statements_prepared"] >= 1
        # a second streamed execution of the same shape counts as a hit
        connection.execute("ACCESS d FROM d IN Document").fetchall()
        assert service.metrics.snapshot()["cache_hits"] == 1

    def test_closed_stream_records_metrics_once(self, database):
        service = QueryService(database)
        connection = connect(database, service=service)
        cursor = connection.execute("ACCESS p FROM p IN Paragraph")
        cursor.fetchone()
        cursor.close()
        assert service.metrics.snapshot()["queries"] == 1

    def test_prepare_rejects_dml(self, database):
        service = QueryService(database)
        with pytest.raises(ServiceError):
            service.prepare("INSERT INTO Document (title) VALUES ('x')")

    def test_prepare_reanalyzes_after_schema_ddl(self, database):
        service = QueryService(database)
        service.prepare("ACCESS d FROM d IN Document")
        before = service.prepare("ACCESS d FROM d IN Document")
        service.execute("CREATE CLASS Extra ISA Document")
        after = service.prepare("ACCESS d FROM d IN Document")
        # the statement cache revalidates on the schema version, so the
        # handle is rebuilt from a fresh analysis
        assert after.analyzed is not before.analyzed


# ----------------------------------------------------------------------
# bulk datamodel paths
# ----------------------------------------------------------------------
class TestBulkDatamodel:
    def test_update_ticks_version_clock_once(self, database):
        oid = database.extension("Paragraph")[0]
        version = database.versions.data
        database.update(oid, number=99, content="rewritten")
        assert database.versions.data == version + 1
        assert database.value(oid, "number") == 99
        assert database.value(oid, "content") == "rewritten"

    def test_update_statement_ticks_version_once_per_object(self, database):
        connection = connect(database)
        version = database.versions.data
        touched = connection.execute(
            "UPDATE Section s SET title = 'multi', number = 0").rowcount
        assert database.versions.data == version + touched

    def test_update_maintains_indexes_per_property(self, database):
        database.create_hash_index("Paragraph", "number")
        database.create_hash_index("Paragraph", "content")
        oid = database.extension("Paragraph")[0]
        database.update(oid, number=1234, content="indexed text")
        assert oid in database.indexes.get("Paragraph", "number").lookup(1234)
        assert oid in database.indexes.get(
            "Paragraph", "content").lookup("indexed text")

    def test_update_validates_before_writing(self, database):
        oid = database.extension("Paragraph")[0]
        number = database.value(oid, "number")
        with pytest.raises(TypeMismatchError):
            database.update(oid, number=5, content=123)
        # the valid column must not have been applied either
        assert database.value(oid, "number") == number

    def test_create_many_matches_create_semantics(self):
        loop_db = fresh_database()
        bulk_db = fresh_database()
        rows = [{"title": f"t{i}", "author": f"a{i}"} for i in range(20)]
        loop_oids = [loop_db.create("Document", **row) for row in rows]
        bulk_oids = bulk_db.create_many("Document", rows)
        assert loop_oids == bulk_oids
        assert (loop_db.statistics.objects_created
                == bulk_db.statistics.objects_created)
        assert loop_db.versions.data == bulk_db.versions.data
        for oid in bulk_oids:
            assert bulk_db.value(oid, "title") == loop_db.value(oid, "title")
        loop_parts = [len(p) for p in loop_db.extension_partitions("Document")]
        bulk_parts = [len(p) for p in bulk_db.extension_partitions("Document")]
        assert loop_parts == bulk_parts

    def test_create_many_maintains_indexes(self, database):
        database.create_hash_index("Document", "author")
        oids = database.create_many(
            "Document", [{"title": "x", "author": "bulk-author"}] * 3)
        index = database.indexes.get("Document", "author")
        assert index.lookup("bulk-author") == set(oids)
        # the generator's title hash index must also see the new objects
        title_index = database.indexes.get("Document", "title")
        assert title_index.lookup("x") == set(oids)

    def test_create_many_validates_before_creating(self, database):
        count = database.object_count()
        with pytest.raises(TypeMismatchError):
            database.create_many("Document",
                                 [{"title": "ok"}, {"title": 42}])
        assert database.object_count() == count

    def test_create_many_unknown_property_rejected(self, database):
        with pytest.raises(SchemaError):
            database.create_many("Document", [{"nope": 1}])
