"""Tests for schema definitions, objects, the database and its statistics."""

from __future__ import annotations

import pytest

from repro.datamodel.database import Database
from repro.datamodel.methods import path_method
from repro.datamodel.objects import DatabaseObject
from repro.datamodel.oid import OID
from repro.datamodel.schema import (
    ClassDef,
    InverseLink,
    MethodDef,
    MethodKind,
    PropertyDef,
    Schema,
)
from repro.datamodel.types import INT, STRING, object_type, set_of
from repro.errors import (
    MethodInvocationError,
    MethodResolutionError,
    ObjectNotFoundError,
    SchemaError,
    TypeMismatchError,
)


def simple_schema() -> Schema:
    """A tiny two-class schema used by the database tests."""
    schema = Schema("test")
    person = ClassDef("Person")
    person.add_property(PropertyDef("name", STRING))
    person.add_property(PropertyDef("age", INT))
    person.add_property(PropertyDef(
        "friends", set_of(object_type("Person")), target_class="Person"))
    person.add_method(MethodDef(
        name="greeting",
        return_type=STRING,
        implementation=lambda ctx, receiver: f"hello {ctx.value(receiver, 'name')}",
        cost_per_call=2.0))
    schema.add_class(person)

    employee = ClassDef("Employee", superclass="Person")
    employee.add_property(PropertyDef("salary", INT))
    schema.add_class(employee)
    schema.validate()
    return schema


class TestSchemaDefinition:
    def test_duplicate_class_rejected(self):
        schema = Schema()
        schema.define_class("A")
        with pytest.raises(SchemaError):
            schema.define_class("A")

    def test_duplicate_property_rejected(self):
        cls = ClassDef("A")
        cls.add_property(PropertyDef("x", INT))
        with pytest.raises(SchemaError):
            cls.add_property(PropertyDef("x", STRING))

    def test_duplicate_method_rejected(self):
        cls = ClassDef("A")
        cls.add_method(MethodDef(name="m"))
        with pytest.raises(SchemaError):
            cls.add_method(MethodDef(name="m"))

    def test_class_and_instance_methods_are_separate_namespaces(self):
        cls = ClassDef("A")
        cls.add_method(MethodDef(name="m"))
        cls.add_method(MethodDef(name="m", class_level=True))  # must not raise
        assert "m" in cls.instance_methods
        assert "m" in cls.class_methods

    def test_get_unknown_class_raises(self):
        with pytest.raises(SchemaError):
            Schema().get_class("Nope")

    def test_validate_rejects_unknown_superclass(self):
        schema = Schema()
        schema.define_class("B", superclass="Missing")
        with pytest.raises(SchemaError):
            schema.validate()

    def test_validate_rejects_dangling_reference_property(self):
        schema = Schema()
        cls = schema.define_class("A")
        cls.add_property(PropertyDef("other", object_type("Missing"),
                                     target_class="Missing"))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_inverse_link_validation(self):
        schema = simple_schema()
        with pytest.raises(SchemaError):
            schema.add_inverse_link(InverseLink("Person", "nonexistent",
                                                "Person", "friends"))

    def test_inverse_link_lookup_and_reversal(self, doc_schema):
        link = doc_schema.find_inverse("Section", "document")
        assert link is not None
        assert link.target_property == "sections"
        reverse = doc_schema.find_inverse("Document", "sections")
        assert reverse is not None
        assert reverse.target_property == "document"

    def test_describe_mentions_all_classes(self, doc_schema):
        text = doc_schema.describe()
        for name in ("Document", "Section", "Paragraph"):
            assert name in text


class TestInheritance:
    def test_property_resolution_walks_superclasses(self):
        schema = simple_schema()
        prop = schema.resolve_property("Employee", "name")
        assert prop.vml_type == STRING

    def test_method_resolution_walks_superclasses(self):
        schema = simple_schema()
        assert schema.resolve_instance_method("Employee", "greeting").name == "greeting"

    def test_unknown_property_raises(self):
        schema = simple_schema()
        with pytest.raises(SchemaError):
            schema.resolve_property("Person", "salary")

    def test_unknown_method_raises(self):
        schema = simple_schema()
        with pytest.raises(MethodResolutionError):
            schema.resolve_instance_method("Person", "fly")

    def test_inheritance_cycle_detected(self):
        schema = Schema()
        schema.add_class(ClassDef("A", superclass="B"))
        schema.add_class(ClassDef("B", superclass="A"))
        with pytest.raises(SchemaError):
            schema.resolve_property("A", "x")


class TestDatabaseObjects:
    def test_snapshot_is_a_copy(self):
        obj = DatabaseObject(OID("Person", 1), {"name": "x"})
        snapshot = obj.snapshot()
        obj.set("name", "y")
        assert snapshot["name"] == "x"

    def test_get_missing_property_raises(self):
        obj = DatabaseObject(OID("Person", 1))
        with pytest.raises(SchemaError):
            obj.get("name")
        assert obj.get_or_none("name") is None


class TestDatabase:
    def test_create_and_read(self):
        db = Database(simple_schema())
        oid = db.create("Person", name="Ada", age=36, friends=set())
        assert db.value(oid, "name") == "Ada"
        assert db.get(oid).class_name == "Person"
        assert db.object_count() == 1

    def test_create_validates_property_types(self):
        db = Database(simple_schema())
        with pytest.raises(TypeMismatchError):
            db.create("Person", name="Ada", age="thirty-six")

    def test_create_rejects_unknown_properties(self):
        db = Database(simple_schema())
        with pytest.raises(SchemaError):
            db.create("Person", nickname="A")

    def test_get_unknown_oid_raises(self):
        db = Database(simple_schema())
        with pytest.raises(ObjectNotFoundError):
            db.get(OID("Person", 99))

    def test_value_of_unknown_property_raises(self):
        db = Database(simple_schema())
        oid = db.create("Person", name="Ada")
        with pytest.raises(SchemaError):
            db.value(oid, "salary")

    def test_set_value_validates_type(self):
        db = Database(simple_schema())
        oid = db.create("Person", name="Ada", age=36)
        db.set_value(oid, "age", 37)
        assert db.value(oid, "age") == 37
        with pytest.raises(TypeMismatchError):
            db.set_value(oid, "age", "old")

    def test_extension_includes_subclasses(self):
        db = Database(simple_schema())
        person = db.create("Person", name="Ada")
        employee = db.create("Employee", name="Grace", salary=1)
        deep = db.extension("Person")
        assert person in deep and employee in deep
        shallow = db.extension("Person", deep=False)
        assert employee not in shallow
        assert db.extension_size("Person") == 2
        assert db.extension_size("Employee") == 1

    def test_extension_of_unknown_class_raises(self):
        db = Database(simple_schema())
        with pytest.raises(SchemaError):
            db.extension("Ghost")

    def test_method_dispatch(self):
        db = Database(simple_schema())
        oid = db.create("Person", name="Ada")
        assert db.invoke(oid, "greeting") == "hello Ada"

    def test_method_dispatch_on_subclass_instance(self):
        db = Database(simple_schema())
        oid = db.create("Employee", name="Grace", salary=1)
        assert db.invoke(oid, "greeting") == "hello Grace"

    def test_method_arity_checked(self):
        db = Database(simple_schema())
        oid = db.create("Person", name="Ada")
        with pytest.raises(MethodInvocationError):
            db.invoke(oid, "greeting", "extra")

    def test_method_without_implementation_raises(self):
        schema = Schema()
        cls = schema.define_class("A")
        cls.add_method(MethodDef(name="m"))
        db = Database(schema)
        oid = db.create("A")
        with pytest.raises(MethodInvocationError):
            db.invoke(oid, "m")

    def test_failing_method_wrapped_in_invocation_error(self):
        schema = Schema()
        cls = schema.define_class("A")
        cls.add_method(MethodDef(
            name="boom", implementation=lambda ctx, r: 1 / 0))
        db = Database(schema)
        oid = db.create("A")
        with pytest.raises(MethodInvocationError, match="boom"):
            db.invoke(oid, "boom")

    def test_class_method_dispatch(self, doc_database):
        result = doc_database.invoke_class_method(
            "Document", "select_by_index", "Query Optimization")
        assert result
        assert all(oid.class_name == "Document" for oid in result)

    def test_path_method_through_context(self):
        schema = Schema()
        a = schema.define_class("A")
        a.add_property(PropertyDef("b", object_type("B"), target_class="B"))
        a.add_method(MethodDef(name="other_name", return_type=STRING,
                               implementation=path_method("b", "name")))
        b = schema.define_class("B")
        b.add_property(PropertyDef("name", STRING))
        db = Database(schema)
        b_oid = db.create("B", name="target")
        a_oid = db.create("A", b=b_oid)
        assert db.invoke(a_oid, "other_name") == "target"


class TestStatistics:
    def test_counters_accumulate_and_reset(self):
        db = Database(simple_schema())
        oid = db.create("Person", name="Ada", age=36)
        db.value(oid, "name")
        db.invoke(oid, "greeting")
        stats = db.statistics
        assert stats.objects_created == 1
        assert stats.property_reads >= 2  # direct read + read inside greeting
        assert stats.calls_of("Person", "greeting") == 1
        assert stats.method_cost_units == pytest.approx(2.0)
        db.reset_statistics()
        assert db.statistics.total_method_calls() == 0

    def test_work_snapshot_contains_ir_counters(self, doc_database):
        snapshot = doc_database.work_snapshot()
        assert "ir_cost_units" in snapshot
        assert "total_cost_units" in snapshot

    def test_diff(self):
        db = Database(simple_schema())
        before = db.statistics.snapshot()
        db.create("Person", name="Ada")
        delta = db.statistics.diff(before)
        assert delta["objects_created"] == 1
