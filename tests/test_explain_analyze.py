"""EXPLAIN / EXPLAIN ANALYZE output stability.

Golden-ish assertions: the reports must keep naming the chosen access
paths, the estimated and actual cardinalities and the per-operator
counters, across naive, optimized and parallel plans and across every
entry point (Session.explain, QueryService.explain, Connection/Cursor
explain, and the ``EXPLAIN [ANALYZE]`` statement itself).
"""

from __future__ import annotations

import re

import pytest

from repro import connect, open_service, open_session
from repro.errors import VQLSyntaxError
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.plans import ParallelScan
from repro.physical.profile import (
    PlanProfile,
    estimated_vs_actual,
    render_explain_analyze,
)
from repro.service.prepared import prepare_plan
from repro.vql.parser import parse_expression, parse_statement
from repro.workloads import generate_document_database

INDEXED_QUERY = "ACCESS p FROM p IN Paragraph WHERE p.number == 3"


@pytest.fixture()
def indexed_db():
    database = generate_document_database(n_documents=4)
    database.create_hash_index("Paragraph", "number")
    return database


# ----------------------------------------------------------------------
# plain EXPLAIN: access paths stay visible
# ----------------------------------------------------------------------
class TestExplainRendering:
    def test_optimized_explain_names_the_index_path(self, indexed_db):
        session = open_session(indexed_db)
        report = session.explain(INDEXED_QUERY)
        assert "physical plan:" in report
        assert "index_eq_scan<p, Paragraph.number == 3>" in report
        assert re.search(r"estimated cost=[\d.]+, card=[\d.]+", report)

    def test_naive_explain_shows_the_scan_pipeline(self, indexed_db):
        session = open_session(indexed_db)
        report = session.explain(INDEXED_QUERY, optimize=False)
        assert "naive physical plan:" in report
        assert "class_scan<p, Paragraph>" in report
        assert "index_eq_scan" not in report

    def test_explain_statement_matches_the_method(self, indexed_db):
        session = open_session(indexed_db)
        via_statement = session.execute("EXPLAIN " + INDEXED_QUERY)
        assert via_statement.kind == "explain"
        assert via_statement.description == session.explain(INDEXED_QUERY)

    def test_explain_cannot_nest(self):
        with pytest.raises(VQLSyntaxError):
            parse_statement("EXPLAIN EXPLAIN ACCESS p FROM p IN Paragraph")

    def test_explain_analyze_parses_both_readings(self):
        profiled = parse_statement("EXPLAIN ANALYZE " + INDEXED_QUERY)
        assert profiled.analyze
        of_analyze = parse_statement("EXPLAIN ANALYZE Paragraph")
        assert not of_analyze.analyze
        assert str(of_analyze.target) == "ANALYZE Paragraph"


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE: estimated vs actual, per-operator counters
# ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_session_report_carries_actual_rows(self, indexed_db):
        session = open_session(indexed_db)
        report = session.explain(INDEXED_QUERY, analyze=True)
        assert "runtime profile (16 rows):" in report
        assert re.search(
            r"index_eq_scan<p, Paragraph\.number == 3>  "
            r"\(estimated rows=[\d.]+\)  "
            r"\[actual rows=16, opens=1, time=[\d.]+ms\]", report)

    def test_statement_text_reaches_cursor_report(self, indexed_db):
        def stable(report: str) -> str:
            return re.sub(r"time=[\d.]+ms", "time=?", report)

        connection = connect(indexed_db)
        cursor = connection.execute("EXPLAIN ANALYZE " + INDEXED_QUERY)
        assert cursor.rowcount == 0
        assert "actual rows=16" in cursor.statement_report
        assert stable(cursor.statement_report) == \
            stable(connection.explain(INDEXED_QUERY, analyze=True))
        assert stable(cursor.explain(INDEXED_QUERY, analyze=True)) == \
            stable(cursor.statement_report)

    def test_analyze_improves_the_estimate(self, indexed_db):
        # Flat model guesses EQUALITY_SELECTIVITY; after ANALYZE the
        # estimate must match the actual 16 rows (distinct-count driven).
        connection = connect(indexed_db)
        connection.execute("ANALYZE Paragraph")
        report = connection.explain(INDEXED_QUERY, analyze=True)
        match = re.search(r"index_eq_scan.*estimated rows=([\d.]+)\).*"
                          r"actual rows=(\d+)", report)
        assert match is not None
        estimated, actual = float(match.group(1)), int(match.group(2))
        assert actual == 16
        assert abs(estimated - actual) <= 1.0

    def test_update_where_is_profiled_but_never_applied(self, indexed_db):
        connection = connect(indexed_db)
        before = indexed_db.versions.data
        report = connection.explain(
            "UPDATE Paragraph p SET content = 'x' WHERE p.number == 3",
            analyze=True)
        assert "WHERE clause planned as a query" in report
        assert "actual rows=16" in report
        assert indexed_db.versions.data == before

    def test_parameters_bind_for_the_profiled_run(self, indexed_db):
        session = open_session(indexed_db)
        report = session.explain(
            "ACCESS p FROM p IN Paragraph WHERE p.number == :n",
            analyze=True, parameters={"n": 3})
        assert "runtime profile (16 rows):" in report

    def test_naive_optimized_and_parallel_profiles(self, indexed_db):
        # All three plan families expose the same counter vocabulary.
        session = open_session(indexed_db)
        naive = session.explain(INDEXED_QUERY, optimize=False, analyze=True)
        assert "class_scan<p, Paragraph>" in naive
        assert "[actual rows=80" in naive  # the full scan feeds the filter

        optimized = session.explain(INDEXED_QUERY, analyze=True)
        assert "index_eq_scan" in optimized

        plan = ParallelScan("p", "Paragraph",
                            condition=parse_expression("p.number == 3"),
                            degree=2)
        profile = PlanProfile()
        rows = execute_plan(plan, indexed_db, profile=profile)
        report = render_explain_analyze(plan, profile)
        assert f"[actual rows={len(rows)}" in report
        assert "parallel_scan<p, Paragraph" in report


# ----------------------------------------------------------------------
# the profile substrate across all three engines
# ----------------------------------------------------------------------
class TestProfileEngines:
    def query_plan(self, session):
        return session.optimize(INDEXED_QUERY).best_plan

    def test_compiled_and_interpreter_agree_on_rows(self, indexed_db):
        session = open_session(indexed_db)
        plan = self.query_plan(session)
        compiled, interpreted = PlanProfile(), PlanProfile()
        rows = execute_plan(plan, indexed_db, profile=compiled)
        execute_plan_interpreted(plan, indexed_db, profile=interpreted)
        assert compiled.actual_rows(plan) == len(rows)
        assert interpreted.actual_rows(plan) == len(rows)

    def test_prepared_executable_profiles_across_runs(self, indexed_db):
        session = open_session(indexed_db)
        plan = self.query_plan(session)
        profile = PlanProfile()
        from repro.service.prepared import PreparedExecutable
        executable = PreparedExecutable(plan, indexed_db, profile=profile)
        first = executable.run()
        executable.run()
        counters = profile.counters_for(plan)
        assert counters.opens == 2
        assert counters.rows == 2 * len(first)

    def test_unprofiled_prepared_plan_is_unaffected(self, indexed_db):
        session = open_session(indexed_db)
        plan = self.query_plan(session)
        assert prepare_plan(plan, indexed_db).run() == \
            execute_plan(plan, indexed_db)

    def test_estimated_vs_actual_records(self, indexed_db):
        session = open_session(indexed_db)
        plan = self.query_plan(session)
        profile = PlanProfile()
        execute_plan(plan, indexed_db, profile=profile)
        records = estimated_vs_actual(plan, profile,
                                      session.optimizer.cost_model)
        assert records[0]["depth"] == 0
        assert all(record["estimated_rows"] is not None
                   and record["estimated_rows"] >= 0 for record in records)
        assert all(record["ratio"] >= 1.0 for record in records)
        assert all(record["opens"] == 1 for record in records)


# ----------------------------------------------------------------------
# structured records riding on the report string
# ----------------------------------------------------------------------
class TestStructuredRecords:
    def test_session_explain_carries_records(self, indexed_db):
        session = open_session(indexed_db)
        report = session.explain(INDEXED_QUERY, analyze=True)
        assert isinstance(report, str)
        records = report.records
        assert records is not None and len(records) >= 1
        root = records[0]
        assert root["depth"] == 0
        assert root["actual_rows"] == 16
        assert root["estimated_rows"] is not None
        # without analyze there is nothing measured to attach
        assert session.explain(INDEXED_QUERY).records is None

    def test_service_explain_carries_records(self, indexed_db):
        service = open_service(indexed_db)
        report = service.explain(INDEXED_QUERY, analyze=True)
        records = report.records
        assert records is not None
        assert records[0]["actual_rows"] == 16
        assert {"operator", "estimated_rows", "actual_rows", "opens",
                "seconds", "ratio"} <= set(records[0])

    def test_cursor_exposes_statement_records(self, indexed_db):
        connection = connect(indexed_db)
        cursor = connection.execute("EXPLAIN ANALYZE " + INDEXED_QUERY)
        records = cursor.statement_records
        assert records is not None
        assert records[0]["actual_rows"] == 16
        # plain EXPLAIN: report present, no measured records
        cursor.execute("EXPLAIN " + INDEXED_QUERY)
        assert cursor.statement_report is not None
        assert cursor.statement_records is None
        # non-explain statements reset the report and the records
        cursor.execute(INDEXED_QUERY)
        assert cursor.statement_records is None

    def test_update_where_explain_keeps_records(self, indexed_db):
        connection = connect(indexed_db)
        report = connection.explain(
            "UPDATE Paragraph p SET content = 'x' WHERE p.number == 3",
            analyze=True)
        assert report.records is not None
        assert report.records[0]["actual_rows"] == 16


# ----------------------------------------------------------------------
# the service path
# ----------------------------------------------------------------------
class TestServiceExplainAnalyze:
    def test_service_profile_does_not_disturb_the_cache(self, indexed_db):
        service = open_service(indexed_db)
        service.execute(INDEXED_QUERY)
        report = service.explain(INDEXED_QUERY, analyze=True)
        assert "runtime profile (16 rows):" in report
        # the cached executable itself stays unprofiled and reusable
        result = service.execute(INDEXED_QUERY)
        assert result.metrics.cache_hit
        assert len(result) == 16
