"""Tests for the general algebra operators, VQL translation, printers and
tree-rewriting helpers."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import BinaryOp, Const, Var
from repro.algebra.operators import (
    Diff,
    ExpressionSource,
    Flat,
    Get,
    Join,
    Map,
    NaturalJoin,
    Project,
    Select,
    Union,
    operator_size,
    references_of,
    walk_operators,
)
from repro.algebra.printer import format_inline, format_tree
from repro.algebra.translate import OUTPUT_REF, translate_query
from repro.algebra.visitors import (
    node_at,
    positions,
    replace_at,
    replace_node,
    transform_bottom_up,
    transform_top_down,
)
from repro.errors import AlgebraError, TranslationError
from repro.vql.analyzer import analyze_query
from repro.vql.parser import parse_expression, parse_query

GET_P = Get("p", "Paragraph")
GET_Q = Get("q", "Paragraph")
GET_D = Get("d", "Document")


class TestOperatorConstruction:
    def test_get_refs(self):
        assert GET_P.refs() == ("p",)
        assert references_of(GET_P) == {"p"}

    def test_select_refs_and_params(self):
        select = Select(parse_expression("p.number == 1"), GET_P)
        assert select.refs() == ("p",)
        assert select.parameters() == (parse_expression("p.number == 1"),)

    def test_select_rejects_unknown_reference(self):
        with pytest.raises(AlgebraError):
            Select(parse_expression("q.number == 1"), GET_P)

    def test_join_requires_disjoint_refs(self):
        with pytest.raises(AlgebraError):
            Join(Const(True), GET_P, Get("p", "Document"))

    def test_join_condition_reference_check(self):
        with pytest.raises(AlgebraError):
            Join(parse_expression("z.a == 1"), GET_P, GET_D)

    def test_join_refs_are_union(self):
        join = Join(Const(True), GET_P, GET_D)
        assert set(join.refs()) == {"p", "d"}

    def test_union_and_diff_require_equal_refs(self):
        with pytest.raises(AlgebraError):
            Union(GET_P, GET_D)
        with pytest.raises(AlgebraError):
            Diff(GET_P, GET_D)
        assert Union(GET_P, Get("p", "Section")).refs() == ("p",)

    def test_natural_join_common_refs(self):
        join = NaturalJoin(Select(Const(True), GET_P),
                           Join(Const(True), Get("p", "Paragraph"), GET_D))
        assert join.common_refs() == ("p",)

    def test_map_introduces_new_ref(self):
        mapped = Map("t", parse_expression("p.title"), GET_P)
        assert set(mapped.refs()) == {"p", "t"}
        with pytest.raises(AlgebraError):
            Map("p", parse_expression("p.title"), GET_P)
        with pytest.raises(AlgebraError):
            Map("t", parse_expression("z.title"), GET_P)

    def test_flat_introduces_new_ref(self):
        flattened = Flat("s", parse_expression("d.sections"), GET_D)
        assert set(flattened.refs()) == {"d", "s"}
        with pytest.raises(AlgebraError):
            Flat("d", parse_expression("d.sections"), GET_D)

    def test_project_validates_and_sorts_refs(self):
        join = Join(Const(True), GET_P, GET_D)
        project = Project(("d", "p"), join)
        assert project.refs() == ("d", "p")
        with pytest.raises(AlgebraError):
            Project(("missing",), GET_P)
        with pytest.raises(AlgebraError):
            Project((), GET_P)

    def test_expression_source_must_be_reference_free(self):
        from repro.algebra.expressions import ClassMethodCall
        ExpressionSource("p", ClassMethodCall("Paragraph", "retrieve_by_string",
                                              (Const("x"),)))
        with pytest.raises(AlgebraError):
            ExpressionSource("p", parse_expression("q.sections"))

    def test_with_inputs_replaces_children(self):
        select = Select(parse_expression("p.number == 1"), GET_P)
        replaced = select.with_inputs([Get("p", "Section")])
        assert replaced.input == Get("p", "Section")
        join = Join(Const(True), GET_P, GET_D)
        swapped = join.with_inputs([GET_D, GET_P])
        assert swapped.left == GET_D

    def test_operators_are_hashable_memo_keys(self):
        a = Select(parse_expression("p.number == 1"), GET_P)
        b = Select(parse_expression("p.number == 1"), Get("p", "Paragraph"))
        assert a == b and hash(a) == hash(b)

    def test_walk_and_size(self):
        plan = Project(("p",), Select(Const(True), GET_P))
        assert operator_size(plan) == 3
        assert [type(node).__name__ for node in walk_operators(plan)] == \
            ["Project", "Select", "Get"]


class TestTranslation:
    def translate(self, text, schema):
        return translate_query(analyze_query(parse_query(text), schema))

    def test_single_class_range_shape(self, doc_schema):
        result = self.translate(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1", doc_schema)
        assert isinstance(result.plan, Project)
        select = result.plan.input
        assert isinstance(select, Select)
        assert isinstance(select.input, Get)
        assert result.output_ref == "p"

    def test_access_expression_introduces_result_ref(self, doc_schema):
        result = self.translate("ACCESS d.title FROM d IN Document", doc_schema)
        assert result.output_ref == OUTPUT_REF
        assert isinstance(result.plan.input, Map)

    def test_two_class_ranges_become_cartesian_join(self, doc_schema):
        result = self.translate(
            "ACCESS p FROM p IN Paragraph, q IN Paragraph WHERE p->sameDocument(q)",
            doc_schema)
        select = result.plan.input
        join = select.input
        assert isinstance(join, Join)
        assert join.condition == Const(True)

    def test_dependent_range_becomes_flat(self, doc_schema):
        result = self.translate(
            "ACCESS d.title FROM d IN Document, p IN d->paragraphs()", doc_schema)
        nodes = [type(n).__name__ for n in walk_operators(result.plan)]
        assert "Flat" in nodes

    def test_first_range_cannot_be_dependent(self, doc_schema):
        # the analyzer rejects it first, so build the error via the translator
        from repro.vql.analyzer import AnalyzedQuery
        from repro.vql.ast import Query, RangeDeclaration
        query = Query(access=Var("p"),
                      ranges=(RangeDeclaration("p", parse_expression("d->paragraphs()")),),
                      where=None)
        with pytest.raises(TranslationError):
            translate_query(AnalyzedQuery(query=query, variable_types={"p": None}))

    def test_query_without_ranges_rejected(self, doc_schema):
        from repro.vql.analyzer import AnalyzedQuery
        from repro.vql.ast import Query
        with pytest.raises(TranslationError):
            translate_query(AnalyzedQuery(
                query=Query(access=Var("p"), ranges=(), where=None)))


class TestPrinters:
    def test_format_inline_follows_paper_notation(self):
        plan = Select(parse_expression("p.number == 1"), GET_P)
        assert format_inline(plan) == "select<(p.number == 1)>(get<p, Paragraph>)"

    def test_format_tree_indents_children(self):
        plan = Project(("p",), Select(Const(True), GET_P))
        lines = format_tree(plan).splitlines()
        assert lines[0].startswith("project")
        assert lines[1].startswith("  select")
        assert lines[2].startswith("    get")


class TestVisitors:
    def plan(self):
        return Project(("p",), Select(parse_expression("p.number == 1"), GET_P))

    def test_positions_and_node_at(self):
        plan = self.plan()
        paths = list(positions(plan))
        assert () in paths and (0,) in paths and (0, 0) in paths
        assert isinstance(node_at(plan, (0, 0)), Get)

    def test_replace_at(self):
        plan = self.plan()
        new_plan = replace_at(plan, (0, 0), Get("p", "Section"))
        assert node_at(new_plan, (0, 0)) == Get("p", "Section")
        # original untouched
        assert node_at(plan, (0, 0)) == GET_P

    def test_replace_node(self):
        plan = self.plan()
        new_plan = replace_node(plan, GET_P, Get("p", "Section"))
        assert Get("p", "Section") in list(walk_operators(new_plan))

    def test_transform_bottom_up(self):
        plan = self.plan()
        renamed = transform_bottom_up(
            plan, lambda node: Get("p", "Section") if isinstance(node, Get) else None)
        assert node_at(renamed, (0, 0)) == Get("p", "Section")

    def test_transform_top_down(self):
        plan = self.plan()
        result = transform_top_down(
            plan,
            lambda node: node.input if isinstance(node, Project) else None)
        assert isinstance(result, Select)
