"""The telemetry subsystem: span trees, metrics export, slow-query log.

Span-shape goldens pin the statement lifecycle (analyze → plan-cache →
optimize → compile → execute) across the cache-hit, cache-miss and
feedback-replan paths; histogram tests verify the percentile math against
known samples; the concurrency test checks that the execute histogram
counts exactly one observation per statement under a thread pool.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.api.connection import connect
from repro.errors import ReproError
from repro.service.service import QueryService, ServiceMetrics
from repro.session import Session
from repro.telemetry import dump
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.sinks import JsonlSink, MemorySink
from repro.telemetry.slowlog import SLOW_QUERY_ENV, SlowQueryLog
from repro.telemetry.spans import (NOOP_SPAN, Tracer, child_span,
                                   current_span)
from repro.workloads import generate_document_database
from repro.workloads.documents import QUERY_TERM

QUERY = "ACCESS p FROM p IN Paragraph WHERE p->contains_string(:term)"
PARAMS = {"term": QUERY_TERM}

MISS_GOLDEN = ["statement", "analyze", "plan-cache", "optimize",
               "compile", "execute"]
HIT_GOLDEN = ["statement", "analyze", "plan-cache", "execute"]


def fresh_database(n_documents: int = 4):
    return generate_document_database(n_documents=n_documents)


def traced_service(**kwargs) -> QueryService:
    # parallelism pinned: a morsel-driven plan adds a 'morsel-dispatch'
    # child under 'execute', which would shift the span-shape goldens
    # under the REPRO_PARALLEL_DEFAULT CI matrix entry
    kwargs.setdefault("parallelism", 1)
    return QueryService(fresh_database(), tracing=True, **kwargs)


def _assert_nested_monotonic(span):
    assert span.ended is not None
    for child in span.children:
        assert child.started >= span.started
        assert child.ended is not None
        assert child.ended <= span.ended
        _assert_nested_monotonic(child)


# ----------------------------------------------------------------------
# span trees
# ----------------------------------------------------------------------
def test_span_tree_cache_miss_then_hit_goldens():
    service = traced_service()
    service.execute(QUERY, parameters=PARAMS)
    service.execute(QUERY, parameters=PARAMS)
    miss, hit = service.tracer.recent()
    assert miss.names() == MISS_GOLDEN
    assert hit.names() == HIT_GOLDEN
    assert miss.attributes["cache_hit"] is False
    assert hit.attributes["cache_hit"] is True
    assert miss.attributes["fingerprint"] == hit.attributes["fingerprint"]
    assert miss.attributes["rows"] == hit.attributes["rows"]
    assert miss.find("plan-cache").attributes == {"hit": False}
    assert hit.find("plan-cache").attributes == {"hit": True}


def test_span_timestamps_nest_monotonically():
    service = traced_service()
    service.execute(QUERY, parameters=PARAMS)
    (span,) = service.tracer.recent()
    _assert_nested_monotonic(span)
    assert span.duration_seconds >= \
        span.find("execute").duration_seconds


def test_optimize_span_links_optimization_trace():
    service = traced_service()
    service.execute(QUERY, parameters=PARAMS)
    optimize = service.tracer.recent()[0].find("optimize")
    assert optimize.attributes["replan"] is False
    assert optimize.attributes["logical_plans"] >= 1
    assert optimize.attributes["physical_plans_costed"] >= 1
    assert optimize.attributes["trace_events"] >= 1


def test_span_tree_feedback_replan():
    from tests.test_service import (FEEDBACK_QUERY, _drift_orders_to_urgent,
                                    _skewed_order_database)
    database = _skewed_order_database()
    service = QueryService(database, tracing=True)
    service.execute("ANALYZE")
    service.execute(FEEDBACK_QUERY)
    _drift_orders_to_urgent(database)
    service.execute(FEEDBACK_QUERY)  # profiled: detects drift, evicts
    service.execute(FEEDBACK_QUERY)  # replans
    spans = service.tracer.recent()
    corrected = spans[-2]
    feedback = corrected.find("feedback")
    assert feedback is not None
    assert feedback.attributes["applied"] is True
    assert feedback.attributes["divergences"] >= 1
    replanned = spans[-1]
    # the replanned statement is a full cache miss; its fresh build arms
    # profiling again, so a no-op feedback check (and the executable swap's
    # compile) trails the lifecycle
    assert replanned.names()[:len(MISS_GOLDEN)] == MISS_GOLDEN
    assert replanned.find("optimize").attributes["replan"] is True
    assert service.metrics.plans_reoptimized >= 1


def test_error_statement_spans_and_counter():
    service = traced_service()
    with pytest.raises(ReproError):
        service.execute("ACCESS p FROM p IN NoSuchClass")
    assert service.metrics.errors == 1
    (span,) = service.tracer.recent()
    assert span.status == "error"
    assert "NoSuchClass" in span.error


def test_streamed_statement_span_and_analyze_seconds():
    service = traced_service()
    stream = service.stream(QUERY, parameters=PARAMS)
    rows = stream.drain()
    (span,) = service.tracer.recent()
    assert span.names() == MISS_GOLDEN
    assert span.attributes["rows"] == len(rows)
    # satellite: the streamed path must record analyze time like execute()
    analyze = service.registry.histogram("repro_analyze_seconds").snapshot()
    assert analyze["count"] == 1
    assert analyze["sum"] > 0.0


def test_tracing_disabled_allocates_nothing():
    service = QueryService(fresh_database())
    assert not service.tracer.enabled
    service.execute(QUERY, parameters=PARAMS)
    assert len(service.tracer) == 0
    assert current_span() is None
    assert child_span("anything") is NOOP_SPAN  # shared no-op singleton


def test_tracing_env_toggle(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert QueryService(fresh_database()).tracer.enabled
    monkeypatch.setenv("REPRO_TRACE", "off")
    assert not QueryService(fresh_database()).tracer.enabled


def test_write_gate_and_apply_spans_for_dml():
    service = traced_service()
    service.execute("INSERT INTO Document (title) VALUES ('telemetry doc')")
    (span,) = service.tracer.recent()
    apply_span = span.find("apply")
    assert apply_span is not None
    assert apply_span.attributes["kind"] == "insert"
    assert apply_span.find("write-gate-wait") is not None


def test_morsel_dispatch_child_span():
    from repro.physical.parallel import process_morsels
    tracer = Tracer(enabled=True)
    morsels = [[1, 2], [3, 4], [5, 6]]
    with tracer.span("statement"):
        rows = process_morsels(morsels, lambda m: [x * 2 for x in m], 3)
    assert rows == [2, 4, 6, 8, 10, 12]
    (span,) = tracer.recent()
    dispatch = span.find("morsel-dispatch")
    assert dispatch is not None
    assert dispatch.attributes == {"morsels": 3, "degree": 3}
    # the inline fast path (degree 1) skips the dispatch span entirely
    with tracer.span("statement"):
        process_morsels(morsels, lambda m: list(m), 1)
    assert tracer.recent()[-1].find("morsel-dispatch") is None


def test_session_statement_spans():
    session = Session(fresh_database(), tracing=True)
    result = session.execute(QUERY, parameters=PARAMS)
    (span,) = session.tracer.recent()
    assert span.names()[:2] == ["statement", "optimize"]
    assert "execute" in span.names()
    assert span.attributes["rows"] == len(result)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
def test_memory_and_jsonl_sinks(tmp_path):
    path = tmp_path / "spans.jsonl"
    memory = MemorySink()
    service = traced_service()
    service.tracer.sinks.extend([memory, JsonlSink(path)])
    service.execute(QUERY, parameters=PARAMS)
    service.execute(QUERY, parameters=PARAMS)
    assert len(memory) == 2
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    trees = [json.loads(line) for line in lines]
    assert trees[0]["name"] == "statement"
    assert [c["name"] for c in trees[1]["children"]] == HIT_GOLDEN[1:]


def test_broken_sink_never_fails_statements():
    class Broken:
        def emit(self, span):
            raise RuntimeError("sink down")

    service = traced_service()
    service.tracer.sinks.append(Broken())
    result = service.execute(QUERY, parameters=PARAMS)
    assert len(result.rows) > 0
    assert len(service.tracer) == 1


def test_tracer_ring_is_bounded():
    tracer = Tracer(enabled=True, capacity=3)
    for i in range(7):
        with tracer.span("statement", i=i):
            pass
    spans = tracer.recent()
    assert len(spans) == 3
    assert [span.attributes["i"] for span in spans] == [4, 5, 6]
    assert "statement" in tracer.export_jsonl()


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
def test_histogram_percentiles_on_known_samples():
    histogram = Histogram("h", "test", buckets=(1.0, 2.0, 4.0, 8.0))
    for value in [0.5] * 50 + [3.0] * 40 + [7.0] * 9 + [100.0]:
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 100
    assert snap["max"] == 100.0
    assert snap["p50"] <= 1.0 < snap["p90"] <= 4.0
    assert snap["p99"] >= 4.0
    assert histogram.percentile(1.0) == 100.0  # overflow reports max


def test_histogram_empty_and_counter_gauge():
    assert Histogram("h", "test").snapshot()["p99"] == 0.0
    counter = Counter("c", "test")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge("g", "test")
    gauge.set(2.5)
    assert gauge.value == 2.5
    assert Gauge("g2", "test", fn=lambda: 7).value == 7


def test_registry_exports_json_and_prometheus():
    registry = MetricsRegistry()
    registry.counter("repro_statements_total", "Statements").inc(3)
    registry.histogram("repro_execute_seconds", "Execute").observe(0.05)
    registry.record_statement("abc123", 0.05)
    payload = registry.export("json")
    assert payload["counters"]["repro_statements_total"] == 3
    assert payload["histograms"]["repro_execute_seconds"]["count"] == 1
    assert payload["statements"][0]["fingerprint"] == "abc123"
    text = registry.export("prometheus")
    assert "# TYPE repro_statements_total counter" in text
    assert "repro_statements_total 3" in text
    assert 'repro_execute_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_execute_seconds_p99" in text
    with pytest.raises(ValueError):
        registry.export("xml")


def test_registry_rejects_kind_collisions():
    registry = MetricsRegistry()
    registry.counter("x", "a counter")
    with pytest.raises(ValueError):
        registry.histogram("x", "not a counter")


def test_per_fingerprint_top_statements():
    registry = MetricsRegistry()
    registry.record_statement("slow", 0.5)
    registry.record_statement("fast", 0.001)
    registry.record_statement("slow", 0.5, error=True)
    top = registry.top_statements(1)
    assert top[0]["fingerprint"] == "slow"
    assert top[0]["count"] == 2
    assert top[0]["errors"] == 1


# ----------------------------------------------------------------------
# the service facade
# ----------------------------------------------------------------------
def test_service_metrics_facade_snapshot_keys():
    service = QueryService(fresh_database())
    service.execute(QUERY, parameters=PARAMS)
    service.execute(QUERY, parameters=PARAMS)
    snapshot = service.metrics.snapshot()
    assert snapshot["queries"] == 2
    assert snapshot["cache_hits"] == 1
    assert snapshot["cache_misses"] == 1
    assert snapshot["errors"] == 0
    assert snapshot["hit_rate"] == 0.5
    assert snapshot["total_execute_seconds"] > 0.0
    assert service.metrics.total_prepare_seconds > 0.0
    assert isinstance(service.metrics, ServiceMetrics)


def test_statements_prepared_setter_is_locked():
    metrics = ServiceMetrics()
    errors = []

    def hammer(value):
        try:
            for _ in range(200):
                metrics.set_statements_prepared(value)
        except Exception as exc:  # pragma: no cover - failure capture
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert metrics.statements_prepared in (0, 1, 2, 3)


def test_concurrent_histogram_counts_every_statement():
    service = QueryService(fresh_database(n_documents=6))
    requests = [(QUERY, PARAMS) for _ in range(24)]
    results = service.run_concurrent(requests, workers=6)
    assert len(results) == 24
    execute = service.registry.histogram("repro_execute_seconds").snapshot()
    assert execute["count"] == 24 == service.metrics.queries
    assert sum(execute["buckets"].values()) >= 24  # cumulative buckets
    top = service.registry.top_statements(1)
    assert top[0]["count"] == 24


def test_plan_cache_and_partition_gauges():
    service = QueryService(fresh_database())
    service.execute(QUERY, parameters=PARAMS)
    gauges = service.registry.export_json()["gauges"]
    assert gauges["repro_plan_cache_size"] == 1
    assert gauges["repro_plan_cache_capacity"] == service.cache.capacity
    assert gauges["repro_extension_partitions"] >= 1
    assert gauges["repro_cached_statements"] == 1
    assert "repro_statistics_analyzed_classes" in gauges
    service.execute("ANALYZE")
    gauges = service.registry.export_json()["gauges"]
    assert gauges["repro_statistics_analyzed_classes"] >= 1


# ----------------------------------------------------------------------
# the connection facade
# ----------------------------------------------------------------------
def test_connection_metrics_and_cursor_spans():
    connection = connect(fresh_database(), tracing=True, parallelism=1)
    cursor = connection.execute(QUERY, parameters=PARAMS)
    rows = cursor.fetchall()
    assert rows
    (span,) = connection.tracer.recent()
    assert span.names() == MISS_GOLDEN
    assert span.attributes["api"] == "cursor"
    payload = connection.metrics()
    histogram = payload["histograms"]["repro_execute_seconds"]
    assert histogram["count"] == 1
    assert histogram["p50"] >= 0.0 and histogram["p99"] >= histogram["p50"]
    text = connection.metrics("prometheus")
    assert "repro_execute_seconds_p50" in text
    assert "repro_execute_seconds_p99" in text
    assert "repro_plan_cache_size 1" in text


def test_dump_renders_connection_and_registry():
    connection = connect(fresh_database(), tracing=True)
    connection.execute(QUERY, parameters=PARAMS).fetchall()
    report = dump(connection)
    assert "== metrics ==" in report
    assert "== recent traces" in report
    assert "statement" in report
    assert "repro_statements_total" in report
    with pytest.raises(TypeError):
        dump(object())


# ----------------------------------------------------------------------
# slow-query log
# ----------------------------------------------------------------------
def test_slowlog_threshold_and_payload(caplog):
    service = QueryService(fresh_database(), slow_query_ms=0.0)
    assert service.slow_log.enabled
    with caplog.at_level(logging.WARNING, logger="repro.telemetry.slowlog"):
        service.execute(QUERY, parameters=PARAMS)
    records = [r for r in caplog.records
               if r.name == "repro.telemetry.slowlog"]
    assert len(records) == 1
    payload = json.loads(records[0].message.split(": ", 1)[1])
    assert payload["event"] == "slow_query"
    assert payload["statement"].startswith("ACCESS p")
    assert payload["cache_hit"] is False
    assert "Scan" in payload["plan"] or "scan" in payload["plan"].lower()
    # bind parameters are redacted to type names, never logged verbatim
    assert payload["parameters"] == {"term": "<str>"}
    assert QUERY_TERM not in records[0].message


def test_slowlog_includes_estimated_vs_actual_when_profiled(caplog):
    from tests.test_service import (FEEDBACK_QUERY, _drift_orders_to_urgent,
                                    _skewed_order_database)
    database = _skewed_order_database()
    service = QueryService(database, slow_query_ms=0.0)
    service.execute("ANALYZE")
    service.execute(FEEDBACK_QUERY)
    _drift_orders_to_urgent(database)
    with caplog.at_level(logging.WARNING, logger="repro.telemetry.slowlog"):
        service.execute(FEEDBACK_QUERY)  # this execution is profile-armed
    payload = json.loads(caplog.records[-1].message.split(": ", 1)[1])
    records = payload["estimated_vs_actual"]
    assert records, "profiled slow query must report estimate vs actual"
    assert {"operator", "estimated_rows", "actual_rows"} <= set(records[0])


def test_slowlog_quiet_below_threshold(caplog):
    service = QueryService(fresh_database(), slow_query_ms=60_000.0)
    with caplog.at_level(logging.WARNING, logger="repro.telemetry.slowlog"):
        service.execute(QUERY, parameters=PARAMS)
    assert not [r for r in caplog.records
                if r.name == "repro.telemetry.slowlog"]


def test_slowlog_env_gating(monkeypatch):
    monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
    assert not SlowQueryLog().enabled
    monkeypatch.setenv(SLOW_QUERY_ENV, "25")
    log = SlowQueryLog()
    assert log.enabled and log.threshold_ms == 25.0
    assert log.would_log(0.030) and not log.would_log(0.020)
    monkeypatch.setenv(SLOW_QUERY_ENV, "not-a-number")
    assert not SlowQueryLog().enabled


def test_slowlog_for_dml_statements(caplog):
    service = QueryService(fresh_database(), slow_query_ms=0.0)
    with caplog.at_level(logging.WARNING, logger="repro.telemetry.slowlog"):
        service.execute("INSERT INTO Document (title) VALUES ('slow doc')")
    records = [r for r in caplog.records
               if r.name == "repro.telemetry.slowlog"]
    assert len(records) == 1
    payload = json.loads(records[0].message.split(": ", 1)[1])
    assert payload["statement"].startswith("INSERT")
