"""Property-based tests (hypothesis) on the core data structures and
invariants: expression manipulation, pattern matching, index structures,
the restricted-algebra normalizer and the optimizer's result preservation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import (
    BinaryOp,
    Const,
    PropertyAccess,
    UnaryOp,
    Var,
    conjuncts,
    free_vars,
    make_conjunction,
    rename_vars,
    substitute,
    walk,
)
from repro.algebra.normalize import normalize
from repro.algebra.operators import Diff, Get, Map, Project, Select, Union
from repro.datamodel.indexes import HashIndex, SortedIndex
from repro.datamodel.ir import InvertedTextIndex, tokenize
from repro.datamodel.oid import OID
from repro.optimizer.patterns import instantiate, match_expression, pattern_from_template
from repro.physical.evaluator import evaluate, make_hashable
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.naive import naive_implementation
from repro.physical.restricted_exec import execute_restricted
from repro.session import Session
from repro.vql.parser import parse_expression
from repro.workloads import document_knowledge, generate_document_database

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
variable_names = st.sampled_from(["p", "q", "d", "s", "x"])
property_names = st.sampled_from(["number", "title", "section", "content"])
scalar_consts = st.one_of(st.integers(-100, 100), st.booleans(),
                          st.sampled_from(["a", "b", "Implementation"]))


def leaf_expressions():
    return st.one_of(variable_names.map(Var), scalar_consts.map(Const))


def expressions(max_depth: int = 3):
    return st.recursive(
        leaf_expressions(),
        lambda children: st.one_of(
            st.tuples(children, property_names).map(
                lambda pair: PropertyAccess(pair[0], pair[1])),
            st.tuples(st.sampled_from(["==", "!=", "<", "AND", "OR", "+"]),
                      children, children).map(
                lambda triple: BinaryOp(triple[0], triple[1], triple[2])),
            children.map(lambda child: UnaryOp("NOT", child)),
        ),
        max_leaves=8)


comparison_values = st.integers(0, 5)


def boolean_conditions():
    """Conditions over the references n1/n2 holding small integers."""
    atoms = st.tuples(st.sampled_from(["n1", "n2"]),
                      st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
                      comparison_values).map(
        lambda triple: BinaryOp(triple[1], Var(triple[0]), Const(triple[2])))
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda pair: BinaryOp("AND", pair[0], pair[1])),
            st.tuples(children, children).map(
                lambda pair: BinaryOp("OR", pair[0], pair[1])),
            children.map(lambda child: UnaryOp("NOT", child)),
        ),
        max_leaves=6)


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------
class TestExpressionProperties:
    @given(expressions())
    def test_walk_contains_the_expression_itself(self, expr):
        assert expr in list(walk(expr))

    @given(expressions())
    def test_structural_equality_is_reflexive_and_hash_consistent(self, expr):
        assert expr == expr
        assert hash(expr) == hash(expr)

    @given(expressions())
    def test_parse_of_str_round_trips(self, expr):
        assert parse_expression(str(expr)) == expr

    @given(expressions())
    def test_identity_substitution_changes_nothing(self, expr):
        mapping = {name: Var(name) for name in free_vars(expr)}
        assert substitute(expr, mapping) == expr

    @given(expressions())
    def test_substitution_eliminates_the_variable(self, expr):
        result = substitute(expr, {"p": Const(1)})
        assert "p" not in free_vars(result)

    @given(expressions())
    def test_rename_is_invertible(self, expr):
        renamed = rename_vars(expr, {"p": "zz", "q": "yy"})
        restored = rename_vars(renamed, {"zz": "p", "yy": "q"})
        assert restored == expr

    @given(expressions())
    def test_conjunction_round_trip(self, expr):
        parts = conjuncts(expr)
        rebuilt = make_conjunction(parts)
        assert conjuncts(rebuilt) == parts

    @given(expressions())
    def test_pattern_matches_its_own_template(self, expr):
        variables = {name: None for name in free_vars(expr)}
        pattern = pattern_from_template(expr, variables)
        binding = match_expression(pattern, expr)
        assert binding is not None
        assert instantiate(pattern, binding) == expr


# ----------------------------------------------------------------------
# indexes
# ----------------------------------------------------------------------
entries = st.lists(st.tuples(st.integers(0, 20), st.integers(1, 500)),
                   min_size=0, max_size=60)


class TestIndexProperties:
    @given(entries, st.integers(0, 20))
    def test_hash_index_lookup_equals_linear_scan(self, pairs, probe):
        index = HashIndex("C", "k")
        for key, serial in pairs:
            index.insert(key, OID("C", serial))
        expected = {OID("C", serial) for key, serial in pairs if key == probe}
        assert index.lookup(probe) == expected

    @given(entries, st.integers(0, 20), st.integers(0, 20))
    def test_sorted_index_range_equals_linear_scan(self, pairs, low, high):
        low, high = min(low, high), max(low, high)
        index = SortedIndex("C", "k")
        for key, serial in pairs:
            index.insert(key, OID("C", serial))
        expected = {OID("C", serial) for key, serial in pairs if low <= key <= high}
        assert index.range(low, high) == expected

    @given(st.lists(st.text(alphabet="abcde ", min_size=0, max_size=30),
                    min_size=1, max_size=20),
           st.text(alphabet="abcde", min_size=1, max_size=3))
    def test_inverted_index_retrieve_equals_substring_scan(self, contents, needle):
        engine = InvertedTextIndex()
        oids = []
        for serial, content in enumerate(contents, start=1):
            oid = OID("P", serial)
            oids.append((oid, content))
            engine.index_text(oid, content)
        expected = {oid for oid, content in oids
                    if tokenize(needle) and needle.lower() in content.lower()}
        # retrieve() is word-based: it may only be compared to the scan when
        # the needle is a single token (the engine's contract)
        if len(tokenize(needle)) == 1:
            assert engine.retrieve(needle) == expected


# ----------------------------------------------------------------------
# algebra semantics on a shared tiny database
# ----------------------------------------------------------------------
_DB = generate_document_database(n_documents=2, seed=3)
_ROWS = [{"n1": a, "n2": b} for a in range(4) for b in range(4)]


class TestAlgebraSemanticsProperties:
    @given(boolean_conditions())
    @settings(max_examples=60, deadline=None)
    def test_normalized_selection_equals_direct_evaluation(self, condition):
        """For arbitrary boolean conditions over paragraph numbers, the
        restricted (normalized) plan and the general plan select exactly the
        same paragraphs."""
        rewritten = substitute(condition, {"n1": parse_expression("p.number"),
                                           "n2": parse_expression("p.number")})
        plan = Project(("p",), Select(rewritten, Get("p", "Paragraph")))
        general = execute_plan(naive_implementation(plan), _DB)
        restricted = execute_restricted(normalize(plan), _DB)
        assert {make_hashable(row["p"]) for row in general} == \
            {make_hashable(row["p"]) for row in restricted}

    @given(boolean_conditions())
    @settings(max_examples=60, deadline=None)
    def test_evaluator_agrees_with_python_semantics(self, condition):
        """The expression evaluator computes the same truth value as a direct
        Python evaluation of the condition."""

        def python_eval(expr, row):
            if isinstance(expr, Const):
                return expr.value
            if isinstance(expr, Var):
                return row[expr.name]
            if isinstance(expr, UnaryOp):
                return not python_eval(expr.operand, row)
            assert isinstance(expr, BinaryOp)
            left = python_eval(expr.left, row)
            right = python_eval(expr.right, row)
            return {
                "==": left == right, "!=": left != right,
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right,
                "AND": bool(left) and bool(right),
                "OR": bool(left) or bool(right),
            }[expr.op]

        for row in _ROWS[:8]:
            assert bool(evaluate(condition, row, _DB)) == bool(python_eval(condition, row))


# ----------------------------------------------------------------------
# differential testing: compiled pipelined engine vs reference interpreter
# ----------------------------------------------------------------------
_SESSION = Session(_DB, knowledge=document_knowledge(_DB.schema))

_PLAN_SHAPES = st.sampled_from(["select", "project", "union", "diff", "map"])


def _paragraph_select(condition):
    rewritten = substitute(condition, {"n1": parse_expression("p.number"),
                                       "n2": parse_expression("p.number")})
    return Select(rewritten, Get("p", "Paragraph"))


class TestCompiledEngineDifferential:
    """The compiled pipelined executor must return exactly the rows of the
    retained reference interpreter on randomized plans."""

    @given(boolean_conditions(), boolean_conditions(), _PLAN_SHAPES)
    @settings(max_examples=60, deadline=None)
    def test_compiled_matches_reference_on_random_plans(self, first, second,
                                                        shape):
        base = _paragraph_select(first)
        other = _paragraph_select(second)
        if shape == "select":
            plan = base
        elif shape == "project":
            plan = Project(("p",), base)
        elif shape == "union":
            plan = Union(base, other)
        elif shape == "diff":
            plan = Diff(base, other)
        else:
            plan = Map("w", parse_expression("p.number + 1"), base)
        physical = naive_implementation(plan)
        compiled = execute_plan(physical, _DB)
        reference = execute_plan_interpreted(physical, _DB)
        # exact equality: same rows, same multiplicities, same order
        assert compiled == reference

    @given(boolean_conditions())
    @settings(max_examples=30, deadline=None)
    def test_compiled_matches_reference_on_optimized_plans(self, condition):
        plan = Project(("p",), _paragraph_select(condition))
        best = _SESSION.optimizer.optimize(plan).best_plan
        assert execute_plan(best, _DB) == execute_plan_interpreted(best, _DB)
