"""Tests for expression pattern matching, the rule framework and the
predefined (builtin) transformation/implementation rules."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import (
    BinaryOp,
    Const,
    MethodCall,
    PatternVar,
    PropertyAccess,
    Var,
)
from repro.algebra.operators import Flat, Get, Join, Map, Project, Select
from repro.optimizer.builtin_rules import (
    standard_implementations,
    standard_rules,
    standard_transformations,
)
from repro.optimizer.patterns import (
    find_matches,
    instantiate,
    match_expression,
    pattern_from_template,
    rewrite_matches,
)
from repro.optimizer.rules import (
    CallableTransformationRule,
    RuleContext,
    RuleSet,
)
from repro.physical.plans import (
    ClassScan,
    ExpressionSetScan,
    Filter,
    HashJoin,
    NestedLoopJoin,
    SetProbeFilter,
)
from repro.vql.parser import parse_expression

GET_P = Get("p", "Paragraph")
GET_Q = Get("q", "Paragraph")
GET_D = Get("d", "Document")


@pytest.fixture()
def context(doc_database):
    return RuleContext(doc_database.schema, doc_database)


class TestPatternMatching:
    def test_exact_match_without_variables(self):
        pattern = parse_expression("p.title == 'x'")
        assert match_expression(pattern, parse_expression("p.title == 'x'")) == {}
        assert match_expression(pattern, parse_expression("p.title == 'y'")) is None

    def test_pattern_variable_binds_subexpression(self):
        pattern = BinaryOp("==", PropertyAccess(PatternVar("d"), "title"),
                           PatternVar("s"))
        expression = parse_expression("p->document().title == 'QO'")
        binding = match_expression(pattern, expression)
        assert binding == {"d": parse_expression("p->document()"), "s": Const("QO")}

    def test_repeated_variable_must_bind_equal_expressions(self):
        pattern = BinaryOp("==", PatternVar("x"), PatternVar("x"))
        assert match_expression(pattern, parse_expression("a.b == a.b")) is not None
        assert match_expression(pattern, parse_expression("a.b == a.c")) is None

    def test_restriction_callback(self):
        pattern = PatternVar("x", restrict=lambda e: isinstance(e, Const))
        assert match_expression(pattern, Const(1)) == {"x": Const(1)}
        assert match_expression(pattern, Var("v")) is None

    def test_method_name_and_arity_must_match(self):
        pattern = MethodCall(PatternVar("x"), "document", ())
        assert match_expression(pattern, parse_expression("p->document()")) is not None
        assert match_expression(pattern, parse_expression("p->paragraphs()")) is None
        assert match_expression(pattern, parse_expression("p->document(1)")) is None

    def test_find_matches_locates_nested_occurrences(self):
        pattern = MethodCall(PatternVar("x"), "document", ())
        expression = parse_expression(
            "p->document().title == 'a' AND q->document().title == 'b'")
        matches = list(find_matches(pattern, expression))
        assert len(matches) == 2

    def test_instantiate_substitutes_bindings(self):
        template = PropertyAccess(PropertyAccess(PatternVar("p"), "section"),
                                  "document")
        result = instantiate(template, {"p": Var("q")})
        assert result == parse_expression("q.section.document")

    def test_instantiate_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            instantiate(PatternVar("missing"), {})

    def test_rewrite_matches_produces_one_alternative_per_occurrence(self):
        pattern = MethodCall(PatternVar("p"), "document", ())
        template = PropertyAccess(PropertyAccess(PatternVar("p"), "section"),
                                  "document")
        expression = parse_expression(
            "p->document() == q->document()")
        rewrites = rewrite_matches(expression, pattern, template)
        assert len(rewrites) == 2
        assert parse_expression("p.section.document == q->document()") in rewrites
        assert parse_expression("p->document() == q.section.document") in rewrites

    def test_rewrite_matches_respects_guard(self):
        pattern = MethodCall(PatternVar("p"), "document", ())
        template = PropertyAccess(PatternVar("p"), "never")
        expression = parse_expression("p->document() == q->document()")
        rewrites = rewrite_matches(
            expression, pattern, template,
            guard=lambda occ, binding: binding["p"] == Var("p"))
        assert len(rewrites) == 1

    def test_pattern_from_template(self):
        expression = parse_expression("d.title == s")
        pattern = pattern_from_template(expression, {"d": None, "s": None})
        assert isinstance(pattern.left.base, PatternVar)
        assert isinstance(pattern.right, PatternVar)
        # variables not listed stay ordinary variables
        partial = pattern_from_template(expression, {"d": None})
        assert isinstance(partial.right, Var)


class TestRuleSet:
    def test_tag_filtering(self):
        rules = standard_rules()
        assert len(rules.without_tag("builtin")) == 0
        assert len(rules.only_tags("builtin")) == len(rules)
        assert len(rules) == (len(rules.transformations) + len(rules.implementations))

    def test_merged_with(self):
        first = RuleSet("a", transformations=[CallableTransformationRule(name="t1")])
        second = RuleSet("b", transformations=[CallableTransformationRule(name="t2")])
        merged = first.merged_with(second)
        assert set(merged.rule_names()) == {"t1", "t2"}

    def test_add_rejects_non_rules(self):
        with pytest.raises(TypeError):
            RuleSet().add("not a rule")

    def test_rule_context_ref_class(self, context):
        assert context.ref_class(GET_P, "p") == "Paragraph"
        assert context.conforms_to_class(GET_P, "p", "Paragraph")
        assert not context.conforms_to_class(GET_P, "p", "Document")

    def test_rule_context_expression_class(self, context):
        expr = parse_expression("p->document()")
        assert context.expression_class(expr, GET_P) == "Document"
        assert context.expression_class(Const(5), GET_P) is None


def _rule(name):
    rules = {r.name: r for r in standard_transformations()}
    return rules[name]


def _impl(name):
    rules = {r.name: r for r in standard_implementations()}
    return rules[name]


class TestBuiltinTransformations:
    def test_select_split_generates_both_orderings(self, context):
        plan = Select(parse_expression("p.number == 1 AND p.number == 2"), GET_P)
        results = list(_rule("select-split").apply(plan, context))
        assert len(results) == 2
        assert all(isinstance(r, Select) and isinstance(r.input, Select)
                   for r in results)

    def test_select_split_ignores_single_conjunct(self, context):
        plan = Select(parse_expression("p.number == 1"), GET_P)
        assert list(_rule("select-split").apply(plan, context)) == []

    def test_select_merge(self, context):
        plan = Select(parse_expression("p.number == 1"),
                      Select(parse_expression("p.number == 2"), GET_P))
        (merged,) = _rule("select-merge").apply(plan, context)
        assert merged == Select(
            parse_expression("p.number == 1 AND p.number == 2"), GET_P)

    def test_select_commute(self, context):
        inner = parse_expression("p.number == 2")
        outer = parse_expression("p.number == 1")
        plan = Select(outer, Select(inner, GET_P))
        (commuted,) = _rule("select-commute").apply(plan, context)
        assert commuted.condition == inner
        assert commuted.input.condition == outer

    def test_select_true_elimination(self, context):
        plan = Select(Const(True), GET_P)
        assert list(_rule("select-true-elim").apply(plan, context)) == [GET_P]

    def test_select_pushdown_join_left_and_right(self, context):
        join = Join(Const(True), GET_P, GET_D)
        left_cond = Select(parse_expression("p.number == 1"), join)
        (pushed,) = _rule("select-pushdown-join").apply(left_cond, context)
        assert isinstance(pushed.left, Select)
        right_cond = Select(parse_expression("d.title == 'x'"), join)
        (pushed_right,) = _rule("select-pushdown-join").apply(right_cond, context)
        assert isinstance(pushed_right.right, Select)

    def test_select_pushdown_not_applicable_across_sides(self, context):
        join = Join(Const(True), GET_P, GET_D)
        both = Select(parse_expression("p.section == d"), join)
        assert list(_rule("select-pushdown-join").apply(both, context)) == []

    def test_select_into_join(self, context):
        join = Join(Const(True), GET_P, GET_Q)
        plan = Select(parse_expression("p == q"), join)
        (theta,) = _rule("select-into-join").apply(plan, context)
        assert isinstance(theta, Join)
        assert theta.condition == parse_expression("p == q")

    def test_join_condition_to_select(self, context):
        join = Join(parse_expression("p == q"), GET_P, GET_Q)
        (lifted,) = _rule("join-condition-to-select").apply(join, context)
        assert isinstance(lifted, Select)
        assert lifted.input.condition == Const(True)

    def test_join_commute(self, context):
        join = Join(Const(True), GET_P, GET_D)
        (commuted,) = _rule("join-commute").apply(join, context)
        assert commuted.left == GET_D and commuted.right == GET_P

    def test_select_pushdown_below_flat(self, context):
        flat = Flat("s", parse_expression("d.sections"), GET_D)
        plan = Select(parse_expression("d.title == 'x'"), flat)
        (pushed,) = _rule("select-pushdown-map-flat").apply(plan, context)
        assert isinstance(pushed, Flat) and isinstance(pushed.input, Select)
        # not applicable when the condition uses the flattened reference
        dependent = Select(parse_expression("s.number == 1"), flat)
        assert list(_rule("select-pushdown-map-flat").apply(dependent, context)) == []

    def test_select_pullup_above_map(self, context):
        plan = Map("t", parse_expression("p.number"),
                   Select(parse_expression("p.number == 1"), GET_P))
        (pulled,) = _rule("select-pullup-map-flat").apply(plan, context)
        assert isinstance(pulled, Select) and isinstance(pulled.input, Map)


class TestBuiltinImplementations:
    def test_get_to_class_scan(self, context):
        (scan,) = _impl("impl-get-scan").implement(GET_P, (), context)
        assert scan == ClassScan("p", "Paragraph")

    def test_select_to_filter(self, context):
        plan = Select(parse_expression("p.number == 1"), GET_P)
        (filtered,) = _impl("impl-select-filter").implement(
            plan, (ClassScan("p", "Paragraph"),), context)
        assert isinstance(filtered, Filter)

    def test_membership_select_to_probe(self, context):
        from repro.vql.analyzer import resolve_class_references
        member = resolve_class_references(
            parse_expression("p IS-IN Paragraph->retrieve_by_string('x')"),
            context.schema, set())
        plan = Select(member, GET_P)
        (probe,) = _impl("impl-select-probe").implement(
            plan, (ClassScan("p", "Paragraph"),), context)
        assert isinstance(probe, SetProbeFilter)

    def test_membership_select_over_get_becomes_set_scan(self, context):
        from repro.vql.analyzer import resolve_class_references
        member = resolve_class_references(
            parse_expression("p IS-IN Paragraph->retrieve_by_string('x')"),
            context.schema, set())
        plan = Select(member, GET_P)
        (scan,) = _impl("impl-select-membership-scan").implement(plan, (), context)
        assert isinstance(scan, ExpressionSetScan)

    def test_membership_scan_requires_matching_class(self, context):
        from repro.vql.analyzer import resolve_class_references
        member = resolve_class_references(
            parse_expression("d IS-IN Paragraph->retrieve_by_string('x')"),
            context.schema, set())
        plan = Select(member, GET_D)
        assert list(_impl("impl-select-membership-scan").implement(
            plan, (), context)) == []

    def test_join_to_nested_loop_and_hash(self, context):
        join = Join(parse_expression("p.section.document == d"), GET_P, GET_D)
        children = (ClassScan("p", "Paragraph"), ClassScan("d", "Document"))
        (nested,) = _impl("impl-join-nested-loop").implement(join, children, context)
        assert isinstance(nested, NestedLoopJoin)
        (hashed,) = _impl("impl-join-hash").implement(join, children, context)
        assert isinstance(hashed, HashJoin)
        assert hashed.left_key == parse_expression("p.section.document")

    def test_hash_join_not_applicable_to_non_equi_join(self, context):
        join = Join(parse_expression("p.number < d.title"), GET_P, GET_D)
        children = (ClassScan("p", "Paragraph"), ClassScan("d", "Document"))
        assert list(_impl("impl-join-hash").implement(join, children, context)) == []

    def test_hash_join_handles_swapped_sides(self, context):
        join = Join(parse_expression("d == p.section.document"), GET_P, GET_D)
        children = (ClassScan("p", "Paragraph"), ClassScan("d", "Document"))
        (hashed,) = _impl("impl-join-hash").implement(join, children, context)
        assert hashed.left_key == parse_expression("p.section.document")
        assert hashed.right_key == parse_expression("d")

    def test_project_map_flat_union_diff_impls(self, context):
        scan = ClassScan("p", "Paragraph")
        project = Project(("p",), GET_P)
        assert _impl("impl-project").implement(project, (scan,), context)
        mapped = Map("t", parse_expression("p.number"), GET_P)
        assert _impl("impl-map").implement(mapped, (scan,), context)
        flat = Flat("s", parse_expression("d.sections"), GET_D)
        assert _impl("impl-flat").implement(flat, (ClassScan("d", "Document"),), context)
