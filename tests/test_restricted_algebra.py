"""Tests for the restricted algebra (Section 6.1): operator validation,
normalization from the general algebra and the restricted interpreter."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Const
from repro.algebra.normalize import Normalizer, normalize
from repro.algebra.operators import Get, Project, walk_operators
from repro.algebra.restricted import (
    CrossProduct,
    FlatProperty,
    JoinCmp,
    MapClassMethod,
    MapConst,
    MapMethod,
    MapOperator,
    MapProperty,
    SelectCmp,
    is_restricted_operator,
    operand_refs,
)
from repro.errors import AlgebraError
from repro.physical.evaluator import make_hashable
from repro.physical.executor import execute_plan
from repro.physical.naive import naive_implementation
from repro.physical.restricted_exec import execute_restricted
from repro.vql.analyzer import analyze_query
from repro.vql.parser import parse_query
from repro.algebra.translate import translate_query

GET_P = Get("p", "Paragraph")
GET_D = Get("d", "Document")


class TestRestrictedOperatorValidation:
    def test_select_cmp_requires_boolean_op(self):
        with pytest.raises(AlgebraError):
            SelectCmp("p", "+", Const(1), GET_P)

    def test_select_cmp_checks_references(self):
        SelectCmp("p", "==", Const(1), GET_P)
        with pytest.raises(AlgebraError):
            SelectCmp("z", "==", Const(1), GET_P)

    def test_join_cmp_checks_sides(self):
        JoinCmp("p", "==", "d", GET_P, GET_D)
        with pytest.raises(AlgebraError):
            JoinCmp("d", "==", "p", GET_P, GET_D)
        with pytest.raises(AlgebraError):
            JoinCmp("p", "==", "p", GET_P, Get("p", "Document"))

    def test_map_property_checks_refs(self):
        mapped = MapProperty("t", "title", "p", GET_P)
        assert set(mapped.refs()) == {"p", "t"}
        with pytest.raises(AlgebraError):
            MapProperty("p", "title", "p", GET_P)
        with pytest.raises(AlgebraError):
            MapProperty("t", "title", "z", GET_P)

    def test_map_method_checks_operands(self):
        MapMethod("t", "m", "p", (Const(1), "p"), GET_P)
        with pytest.raises(AlgebraError):
            MapMethod("t", "m", "p", ("z",), GET_P)

    def test_cross_product_requires_disjoint(self):
        with pytest.raises(AlgebraError):
            CrossProduct(GET_P, Get("p", "Document"))

    def test_operand_refs_filters_constants(self):
        assert operand_refs(("a", Const(1), "b")) == {"a", "b"}

    def test_is_restricted_operator(self):
        assert is_restricted_operator(SelectCmp("p", "==", Const(1), GET_P))
        assert not is_restricted_operator(GET_P)

    def test_describe_contains_parameters(self):
        assert "map_property<t, title, p>" in MapProperty("t", "title", "p", GET_P).describe()
        assert "select_cmp" in SelectCmp("p", "==", Const(1), GET_P).describe()


class TestNormalizer:
    def _normalized(self, text, schema):
        translation = translate_query(analyze_query(parse_query(text), schema))
        return translation, normalize(translation.plan)

    def test_refs_preserved(self, doc_schema):
        translation, restricted = self._normalized(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1", doc_schema)
        assert set(restricted.refs()) == set(translation.plan.refs())

    def test_only_restricted_or_shared_operators(self, doc_schema):
        _, restricted = self._normalized(
            "ACCESS p FROM p IN Paragraph "
            "WHERE p->contains_string('x') AND (p->document()).title == 'y'",
            doc_schema)
        from repro.algebra.operators import (
            Diff, ExpressionSource, Get, NaturalJoin, Project, Union)
        allowed_shared = (Get, Project, NaturalJoin, Union, Diff, ExpressionSource)
        for node in walk_operators(restricted):
            assert is_restricted_operator(node) or isinstance(node, allowed_shared), \
                f"{node.describe()} is not a restricted-algebra operator"

    def test_comparison_becomes_select_cmp(self, doc_schema):
        _, restricted = self._normalized(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1", doc_schema)
        kinds = [type(node).__name__ for node in walk_operators(restricted)]
        assert "SelectCmp" in kinds
        assert "MapProperty" in kinds

    def test_method_call_becomes_map_method(self, doc_schema):
        _, restricted = self._normalized(
            "ACCESS p FROM p IN Paragraph WHERE p->contains_string('x')", doc_schema)
        kinds = [type(node).__name__ for node in walk_operators(restricted)]
        assert "MapMethod" in kinds

    def test_class_method_becomes_map_class_method(self, doc_schema):
        _, restricted = self._normalized(
            "ACCESS p FROM p IN Paragraph "
            "WHERE p IS-IN Document->select_by_index('t').sections.paragraphs",
            doc_schema)
        assert any(isinstance(node, MapClassMethod)
                   for node in walk_operators(restricted))

    def test_equi_join_becomes_join_cmp(self, doc_schema):
        from repro.algebra.expressions import BinaryOp, Var
        from repro.algebra.operators import Join
        join = Join(BinaryOp("==", Var("p"), Var("q")), GET_P,
                    Get("q", "Paragraph"))
        restricted = normalize(join)
        assert any(isinstance(node, JoinCmp) for node in walk_operators(restricted))

    def test_equi_join_with_swapped_sides_mirrors_comparison(self, doc_schema):
        from repro.algebra.expressions import BinaryOp, Var
        from repro.algebra.operators import Join
        join = Join(BinaryOp("<", Var("q"), Var("p")), GET_P,
                    Get("q", "Paragraph"))
        restricted = normalize(join)
        join_cmp = next(node for node in walk_operators(restricted)
                        if isinstance(node, JoinCmp))
        assert (join_cmp.left_ref, join_cmp.op, join_cmp.right_ref) == ("p", ">", "q")

    def test_cartesian_join_becomes_cross_product(self, doc_schema):
        translation = translate_query(analyze_query(parse_query(
            "ACCESS d FROM d IN Document, p IN Paragraph"), doc_schema))
        restricted = normalize(translation.plan)
        assert any(isinstance(node, CrossProduct)
                   for node in walk_operators(restricted))

    def test_fresh_refs_are_unique(self):
        normalizer = Normalizer()
        refs = {normalizer.fresh_ref() for _ in range(100)}
        assert len(refs) == 100

    def test_tuple_constructor_not_supported(self, doc_schema):
        translation = translate_query(analyze_query(parse_query(
            "ACCESS [a: d.title] FROM d IN Document"), doc_schema))
        with pytest.raises(AlgebraError):
            normalize(translation.plan)


class TestRestrictedExecution:
    QUERIES = [
        "ACCESS p FROM p IN Paragraph WHERE p.number == 1",
        "ACCESS p FROM p IN Paragraph WHERE p->contains_string('Implementation')",
        "ACCESS p FROM p IN Paragraph WHERE p.number == 1 AND p->contains_string('Implementation')",
        "ACCESS p FROM p IN Paragraph WHERE NOT p.number == 1",
        "ACCESS p FROM p IN Paragraph WHERE p.number == 1 OR p.number == 2",
        "ACCESS d.title FROM d IN Document",
        "ACCESS d.title FROM d IN Document, p IN d->paragraphs() "
        "WHERE p->contains_string('Implementation')",
        "ACCESS p FROM p IN Paragraph "
        "WHERE (p->document()).title == 'Query Optimization'",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_restricted_execution_matches_general(self, doc_database, query_text):
        """Equal expressive power: the normalized plan computes the same
        result as the general plan (Section 6.1)."""
        analyzed = analyze_query(parse_query(query_text), doc_database.schema)
        translation = translate_query(analyzed)
        general_rows = execute_plan(naive_implementation(translation.plan),
                                    doc_database)
        restricted_rows = execute_restricted(normalize(translation.plan),
                                             doc_database)

        def values(rows):
            return {make_hashable(row.get(translation.output_ref)) for row in rows}

        assert values(general_rows) == values(restricted_rows)

    def test_flat_property_direct_execution(self, doc_database):
        plan = Project(("s",), FlatProperty("s", "sections", "d",
                                            Get("d", "Document")))
        rows = execute_restricted(plan, doc_database)
        assert len(rows) == doc_database.extension_size("Section")

    def test_map_operator_identity_and_arithmetic(self, doc_database):
        plan = MapOperator("t", "+", (Const(1), Const(2)),
                           MapConst("c", Const(5), Get("p", "Paragraph")))
        rows = execute_restricted(plan, doc_database)
        assert rows and all(row["t"] == 3 and row["c"] == 5 for row in rows)
