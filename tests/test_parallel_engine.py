"""Unit tests for the partitioned parallel execution engine.

Covers the tentpole pieces one by one: partition maintenance in the
datamodel (create/update/delete stay consistent with the extensions),
deterministic ordered merges in the morsel driver and the parallel
operators, worker-count edge cases, exception propagation from worker
threads, the optimizer's cost-gated use of parallel operators, and the
service-level ``parallelism=`` knob.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datamodel.partitions import PartitionedExtension
from repro.errors import AlgebraError, ReproError
from repro.physical.evaluator import make_hashable
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.parallel import (
    default_parallelism,
    make_morsels,
    process_morsels,
)
from repro.physical.plans import (
    ClassScan,
    Filter,
    HashJoin,
    ParallelHashJoin,
    ParallelIndexEqScan,
    ParallelMap,
    ParallelScan,
    uses_parallelism,
)
from repro.service.prepared import prepare_plan
from repro.service.service import QueryService
from repro.session import Session
from repro.vql.parser import parse_expression
from repro.workloads import document_knowledge, generate_document_database


def multiset(rows):
    return Counter(make_hashable(row) for row in rows)


@pytest.fixture()
def small_db():
    return generate_document_database(n_documents=2)


# ----------------------------------------------------------------------
# partition maintenance
# ----------------------------------------------------------------------
class TestPartitionMaintenance:
    def test_create_keeps_partitions_consistent(self, small_db):
        for class_name in ("Document", "Section", "Paragraph"):
            extension = small_db.extension(class_name, deep=False)
            partitions = small_db.partitions.for_class(class_name)
            merged = [oid for part in partitions.partitions() for oid in part]
            assert sorted(merged) == sorted(extension)
            assert partitions.total_size() == len(extension)

    def test_partition_assignment_is_deterministic(self, small_db):
        partitions = small_db.partitions.for_class("Paragraph")
        for index, part in enumerate(partitions.partitions()):
            for oid in part:
                assert oid.serial % partitions.n_partitions == index

    def test_delete_removes_from_extension_and_partitions(self, small_db):
        victim = small_db.extension("Paragraph")[0]
        before = small_db.partitions.for_class("Paragraph").total_size()
        small_db.delete(victim)
        assert victim not in small_db.extension("Paragraph")
        assert not small_db.exists(victim)
        partitions = small_db.partitions.for_class("Paragraph")
        assert partitions.total_size() == before - 1
        assert all(victim not in part for part in partitions.partitions())

    def test_delete_removes_index_and_text_entries(self, small_db):
        # Document.title has a hash index, Paragraph.content a text index.
        doc = small_db.extension("Document", deep=False)[0]
        title = small_db.value(doc, "title")
        index = small_db.indexes.get("Document", "title")
        assert doc in index.lookup(title)
        small_db.delete(doc)
        assert doc not in index.lookup(title)

        paragraph = small_db.extension("Paragraph")[0]
        engine = small_db.text_index("Paragraph", "content")
        content_word = str(small_db.value(paragraph, "content")).split()[0]
        small_db.delete(paragraph)
        assert paragraph not in engine.retrieve(content_word)

    def test_delete_removes_text_entries_for_none_valued_property(self, small_db):
        # Text indexes are keyed by OID alone: deleting an object whose
        # indexed property was set to None must still purge the engine.
        paragraph = small_db.extension("Paragraph")[0]
        engine = small_db.text_index("Paragraph", "content")
        small_db.set_value(paragraph, "content", None)
        small_db.delete(paragraph)
        assert all(paragraph not in engine.retrieve(token)
                   for token in ("none", "word0001"))
        assert paragraph not in engine._documents

    def test_delete_bumps_versions_and_statistics(self, small_db):
        data_before = small_db.versions.data
        small_db.delete(small_db.extension("Paragraph")[0])
        assert small_db.versions.data == data_before + 1
        assert small_db.statistics.objects_deleted == 1
        assert small_db.work_snapshot()["objects_deleted"] == 1

    def test_update_counts_partition_writes(self, small_db):
        paragraph = small_db.extension("Paragraph")[0]
        partitions = small_db.partitions.for_class("Paragraph")
        index = partitions.partition_of(paragraph)
        writes_before = partitions.statistics()[index].writes
        small_db.set_value(paragraph, "number", 99)
        assert partitions.statistics()[index].writes == writes_before + 1

    def test_per_partition_statistics_track_inserts_and_removes(self):
        extension = PartitionedExtension("C", n_partitions=4)
        from repro.datamodel.oid import OID
        oids = [OID("C", serial) for serial in range(1, 11)]
        for oid in oids:
            extension.add(oid)
        assert sum(s.inserts for s in extension.statistics()) == 10
        extension.remove(oids[0])
        stats = extension.statistics()[extension.partition_of(oids[0])]
        assert stats.removes == 1
        assert extension.total_size() == 9

    def test_extension_partitions_cover_deep_extension(self, small_db):
        partitions = small_db.extension_partitions("Paragraph")
        merged = [oid for part in partitions for oid in part]
        assert sorted(merged) == sorted(small_db.extension("Paragraph"))


# ----------------------------------------------------------------------
# morsel driver
# ----------------------------------------------------------------------
class TestMorselDriver:
    def test_make_morsels_covers_items_in_order(self):
        items = list(range(100))
        morsels = make_morsels(items, degree=4)
        assert [x for m in morsels for x in m] == items
        assert len(morsels) > 1

    def test_make_morsels_empty(self):
        assert make_morsels([], degree=4) == []

    @pytest.mark.parametrize("degree", [0, 1, 2, 64])
    def test_process_morsels_any_degree(self, degree):
        # degree 0/1 run inline; degree > morsel count still covers all.
        morsels = make_morsels(list(range(10)), degree=max(degree, 1),
                               morsel_size=2)
        result = process_morsels(morsels, lambda m: [x * 2 for x in m], degree)
        assert result == [x * 2 for x in range(10)]

    def test_ordered_merge_is_deterministic(self):
        items = list(range(200))
        morsels = make_morsels(items, degree=4)
        runs = [process_morsels(morsels, lambda m: list(m), 4)
                for _ in range(5)]
        assert all(run == items for run in runs)

    def test_exception_propagates_from_worker(self):
        def worker(morsel):
            if 7 in morsel:
                raise ValueError("boom")
            return list(morsel)

        with pytest.raises(ValueError, match="boom"):
            process_morsels(make_morsels(list(range(20)), 4, morsel_size=2),
                            worker, 4)


# ----------------------------------------------------------------------
# parallel operators
# ----------------------------------------------------------------------
class TestParallelOperators:
    CONDITION = "p->wordCount() > 10"

    def plan(self, degree, condition=CONDITION):
        return ParallelScan("p", "Paragraph",
                            condition=parse_expression(condition),
                            degree=degree)

    def test_degree_zero_is_rejected(self):
        with pytest.raises(AlgebraError):
            ParallelScan("p", "Paragraph", degree=0)
        with pytest.raises(AlgebraError):
            ParallelMap("d", parse_expression("1"),
                        ClassScan("p", "Paragraph"), degree=-1)

    @pytest.mark.parametrize("degree", [1, 2, 64])
    def test_scan_matches_sequential_filter_at_any_degree(self, small_db, degree):
        # degree 1 runs inline, 64 exceeds both partitions and morsels.
        parallel = execute_plan(self.plan(degree), small_db)
        sequential = execute_plan(
            Filter(parse_expression(self.CONDITION),
                   ClassScan("p", "Paragraph")), small_db)
        assert multiset(parallel) == multiset(sequential)

    def test_all_three_engines_agree_on_rows_and_order(self, small_db):
        plan = self.plan(4)
        interpreted = execute_plan_interpreted(plan, small_db)
        compiled = execute_plan(plan, small_db)
        prepared = prepare_plan(plan, small_db).run()
        assert interpreted == compiled == prepared

    def test_ordered_merge_determinism_across_runs(self, small_db):
        plan = self.plan(4)
        first = execute_plan(plan, small_db)
        for _ in range(4):
            assert execute_plan(plan, small_db) == first

    def test_worker_exception_propagates_with_original_type(self, small_db):
        # division by a zero constant inside the predicate fails per row
        plan = ParallelScan(
            "p", "Paragraph",
            condition=parse_expression("p->document() == p"),
            degree=4)
        # comparing a document OID with a paragraph row is fine (False), so
        # build a genuinely failing predicate instead: unknown method.
        failing = ParallelScan(
            "p", "Paragraph",
            condition=parse_expression("p->wordCount(1, 2) > 0"),
            degree=4)
        assert execute_plan(plan, small_db) == []
        with pytest.raises(ReproError):
            execute_plan(failing, small_db)
        with pytest.raises(ReproError):
            prepare_plan(failing, small_db).run()

    def test_parallel_index_eq_scan_residual(self, small_db):
        small_db.create_hash_index("Paragraph", "number")
        condition = parse_expression("p->wordCount() > 10")
        plan = ParallelIndexEqScan("p", "Paragraph", "number", 1,
                                   condition=condition, degree=4)
        interpreted = execute_plan_interpreted(plan, small_db)
        compiled = execute_plan(plan, small_db)
        prepared = prepare_plan(plan, small_db).run()
        assert interpreted == compiled == prepared
        brute = [row for row in execute_plan_interpreted(
                     Filter(condition, ClassScan("p", "Paragraph")), small_db)
                 if small_db.value(row["p"], "number") == 1]
        assert multiset(compiled) == multiset(brute)

    def test_parallel_hash_join_matches_sequential(self, small_db):
        left_key = parse_expression("p->document()")
        right_key = parse_expression("q->document()")
        sequential = HashJoin(left_key, right_key,
                              ClassScan("p", "Paragraph"),
                              ClassScan("q", "Paragraph"))
        parallel = ParallelHashJoin(left_key, right_key,
                                    ClassScan("p", "Paragraph"),
                                    ClassScan("q", "Paragraph"), 4)
        assert (execute_plan(sequential, small_db)
                == execute_plan(parallel, small_db))


# ----------------------------------------------------------------------
# optimizer integration: cost-gated parallel plans
# ----------------------------------------------------------------------
class TestParallelPlanChoice:
    def test_cheap_predicate_stays_sequential(self, small_db):
        session = Session(small_db, parallelism=4)
        plan = session.optimize(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1").best_plan
        assert not uses_parallelism(plan)

    def test_method_predicate_goes_parallel(self, small_db):
        session = Session(small_db, parallelism=4,
                          knowledge=document_knowledge(small_db.schema),
                          exclude_tags=("semantic",))
        plan = session.optimize(
            "ACCESS p FROM p IN Paragraph "
            "WHERE p->contains_string('word0005')").best_plan
        assert uses_parallelism(plan)
        # degree is embedded in the physical plan
        scans = [node for node in _walk(plan) if isinstance(node, ParallelScan)]
        assert scans and all(node.degree == 4 for node in scans)

    def test_degree_one_never_goes_parallel(self, small_db):
        session = Session(small_db, parallelism=1,
                          knowledge=document_knowledge(small_db.schema),
                          exclude_tags=("semantic",))
        plan = session.optimize(
            "ACCESS p FROM p IN Paragraph "
            "WHERE p->contains_string('word0005')").best_plan
        assert not uses_parallelism(plan)

    def test_parallel_and_sequential_sessions_agree(self, small_db):
        query = ("ACCESS p FROM p IN Paragraph "
                 "WHERE p->contains_string('word0005') AND p.number < 5")
        knowledge = document_knowledge(small_db.schema)
        sequential = Session(small_db, knowledge=knowledge,
                             exclude_tags=("semantic",), parallelism=1)
        parallel = Session(small_db, knowledge=knowledge,
                           exclude_tags=("semantic",), parallelism=4)
        assert (sequential.execute(query).value_set()
                == parallel.execute(query).value_set())


def _walk(plan):
    yield plan
    for child in plan.inputs():
        yield from _walk(child)


# ----------------------------------------------------------------------
# service knob
# ----------------------------------------------------------------------
class TestServiceParallelism:
    QUERY = ("ACCESS p FROM p IN Paragraph "
             "WHERE p->contains_string('word0005')")

    def test_service_knob_produces_parallel_plans(self, small_db):
        service = QueryService(small_db,
                               knowledge=document_knowledge(small_db.schema),
                               exclude_tags=("semantic",), parallelism=4)
        result = service.execute(self.QUERY)
        assert uses_parallelism(result.plan.physical_plan)
        # second execution is a cache hit on the same parallel plan
        again = service.execute(self.QUERY)
        assert again.metrics.cache_hit
        assert again.plan is result.plan
        assert multiset(again.rows) == multiset(result.rows)

    def test_parallelism_zero_clamps_to_sequential(self, small_db):
        service = QueryService(small_db, parallelism=0)
        assert service.parallelism == 1
        result = service.execute(self.QUERY)
        assert not uses_parallelism(result.plan.physical_plan)

    def test_default_parallelism_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_DEFAULT", "4")
        assert default_parallelism() == 4
        monkeypatch.setenv("REPRO_PARALLEL_DEFAULT", "not-a-number")
        assert default_parallelism() == 1
        monkeypatch.delenv("REPRO_PARALLEL_DEFAULT")
        assert default_parallelism() == 1

    def test_sequential_and_parallel_services_differ_only_in_plan(self, small_db):
        knowledge = document_knowledge(small_db.schema)
        sequential = QueryService(small_db, knowledge=knowledge,
                                  exclude_tags=("semantic",), parallelism=1)
        parallel = QueryService(small_db, knowledge=knowledge,
                                exclude_tags=("semantic",), parallelism=4)
        a = sequential.execute(self.QUERY)
        b = parallel.execute(self.QUERY)
        assert multiset(a.rows) == multiset(b.rows)
        assert not uses_parallelism(a.plan.physical_plan)
        assert uses_parallelism(b.plan.physical_plan)
