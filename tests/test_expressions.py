"""Tests for the expression node helpers shared by VQL and the algebra."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    MethodCall,
    PropertyAccess,
    SetConstructor,
    TupleConstructor,
    UnaryOp,
    Var,
    conjuncts,
    contains,
    free_vars,
    make_conjunction,
    methods_used,
    properties_used,
    rename_vars,
    replace_subexpression,
    substitute,
    walk,
)
from repro.vql.parser import parse_expression


class TestNodeBasics:
    def test_const_freezes_collections(self):
        assert Const([1, 2]).value == (1, 2)
        assert Const({1, 2}).value == frozenset({1, 2})
        assert Const({"a": 1}).value == (("a", 1),)

    def test_nodes_are_hashable(self):
        expr = parse_expression("p->document().title == 'x'")
        assert hash(expr) == hash(parse_expression("p->document().title == 'x'"))
        assert len({expr, expr}) == 1

    def test_structural_equality(self):
        assert parse_expression("a.b.c") == parse_expression("a.b.c")
        assert parse_expression("a.b.c") != parse_expression("a.b.d")

    def test_is_boolean(self):
        assert parse_expression("a == b").is_boolean()
        assert parse_expression("NOT a").is_boolean()
        assert Const(True).is_boolean()
        assert not parse_expression("a.b").is_boolean()
        assert not parse_expression("a + b").is_boolean()

    def test_str_round_trips_through_parser(self):
        for text in ["p.section.document", "p->m(q, 1)", "(a == 1)",
                     "[x: p.number]", "NOT a"]:
            expr = parse_expression(text)
            assert parse_expression(str(expr)) == expr

    def test_rebuild_preserves_structure(self):
        expr = parse_expression("p->m(a, b)")
        rebuilt = expr.rebuild(list(expr.children()))
        assert rebuilt == expr

    def test_rebuild_on_leaf_without_children(self):
        assert Var("x").rebuild([]) == Var("x")


class TestTraversal:
    def test_walk_visits_all_nodes(self):
        expr = parse_expression("a.b == c->m(d)")
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds[0] == "BinaryOp"
        assert "PropertyAccess" in kinds
        assert "MethodCall" in kinds
        assert kinds.count("Var") == 3

    def test_contains(self):
        expr = parse_expression("p->document().title == 'x'")
        assert contains(expr, parse_expression("p->document()"))
        assert not contains(expr, parse_expression("q->document()"))

    def test_free_vars(self):
        assert free_vars(parse_expression("p.a == q->m(r, 's')")) == {"p", "q", "r"}
        assert free_vars(Const(1)) == set()

    def test_methods_and_properties_used(self):
        expr = parse_expression("p->document().title == 'x' AND p->m(q)")
        assert ("instance", "document") in methods_used(expr)
        assert ("instance", "m") in methods_used(expr)
        assert methods_used(ClassMethodCall("C", "cm", ())) == {("class", "cm")}
        assert properties_used(expr) == {"title"}


class TestSubstitution:
    def test_substitute_variables(self):
        expr = parse_expression("p.title == s")
        result = substitute(expr, {"p": parse_expression("q->document()"),
                                   "s": Const("x")})
        assert result == parse_expression("q->document().title == 'x'")

    def test_substitute_leaves_unmentioned_untouched(self):
        expr = parse_expression("a == b")
        assert substitute(expr, {"c": Var("d")}) is expr

    def test_replace_subexpression(self):
        expr = parse_expression("p->document().title == p->document().author")
        replaced = replace_subexpression(expr, parse_expression("p->document()"),
                                         Var("d"))
        assert replaced == parse_expression("d.title == d.author")

    def test_rename_vars(self):
        expr = parse_expression("p.a == q.b")
        assert rename_vars(expr, {"p": "x"}) == parse_expression("x.a == q.b")


class TestConjunctions:
    def test_conjuncts_split_nested_ands(self):
        expr = parse_expression("a == 1 AND b == 2 AND c == 3")
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_do_not_split_or(self):
        expr = parse_expression("a == 1 OR b == 2")
        assert conjuncts(expr) == [expr]

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []

    def test_make_conjunction_round_trip(self):
        expr = parse_expression("a == 1 AND b == 2 AND c == 3")
        rebuilt = make_conjunction(conjuncts(expr))
        assert conjuncts(rebuilt) == conjuncts(expr)

    def test_make_conjunction_empty(self):
        assert make_conjunction([]) is None

    def test_make_conjunction_single(self):
        single = parse_expression("a == 1")
        assert make_conjunction([single]) == single


class TestConstructors:
    def test_tuple_constructor_children(self):
        expr = TupleConstructor((("a", Var("x")), ("b", Const(1))))
        assert expr.children() == (Var("x"), Const(1))
        rebuilt = expr.rebuild([Var("y"), Const(2)])
        assert rebuilt.fields == (("a", Var("y")), ("b", Const(2)))

    def test_set_constructor_children(self):
        expr = SetConstructor((Var("x"), Const(1)))
        assert free_vars(expr) == {"x"}

    def test_class_extent_str(self):
        assert str(ClassExtent("Paragraph")) == "Paragraph"

    def test_method_call_str(self):
        assert str(MethodCall(Var("p"), "m", (Const(1),))) == "p->m(1)"
        assert str(ClassMethodCall("C", "m", ())) == "C->m()"
