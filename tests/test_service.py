"""The prepared-query service layer: plan cache, invalidation, concurrency.

The differential discipline: after every event that may invalidate cached
plans (index DDL, knowledge registration, bulk data changes) the service's
answer is compared against a *fresh* session built from scratch on the
current database state — a stale plan that survived invalidation would
produce a wrong result or an execution error here.
"""

from __future__ import annotations

import pytest

from repro.errors import BindingError, IndexError_
from repro.optimizer.knowledge import ConditionImplication
from repro.physical.plans import IndexEqScan, walk_physical
from repro.service import PlanCache, QueryService
from repro.session import Session
from repro.workloads import document_knowledge, generate_document_database
from repro.workloads.documents import QUERY_TERM, TARGET_TITLE

PARAM_QUERY = ("ACCESS p FROM p IN Paragraph "
               "WHERE p->contains_string(?) AND (p->document()).title == ?")
NUMBER_QUERY = "ACCESS p FROM p IN Paragraph WHERE p.number == ?"


def fresh_database(n_documents: int = 6):
    return generate_document_database(n_documents=n_documents)


def fresh_service(database, **kwargs) -> QueryService:
    return QueryService(database,
                        knowledge=document_knowledge(database.schema),
                        **kwargs)


def fresh_session(database) -> Session:
    return Session(database, knowledge=document_knowledge(database.schema))


def assert_matches_fresh_session(service, query, parameters, literal_query):
    """Differential check: service result == from-scratch session result."""
    result = service.execute(query, parameters)
    reference = fresh_session(service.database).execute(literal_query)
    assert result.value_set() == reference.value_set()
    return result


# ----------------------------------------------------------------------
# basic prepare / execute
# ----------------------------------------------------------------------
def test_second_execution_hits_the_plan_cache():
    service = fresh_service(fresh_database())
    first = service.execute(PARAM_QUERY, [QUERY_TERM, TARGET_TITLE])
    second = service.execute(PARAM_QUERY, [QUERY_TERM, TARGET_TITLE])
    assert not first.metrics.cache_hit
    assert second.metrics.cache_hit
    assert second.metrics.prepare_seconds == 0.0
    assert first.rows == second.rows


def test_one_cached_plan_serves_every_binding():
    database = fresh_database()
    service = fresh_service(database)
    session = fresh_session(database)
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})
    service.execute(PARAM_QUERY, [QUERY_TERM, titles[0]])
    for title in titles:
        result = service.execute(PARAM_QUERY, [QUERY_TERM, title])
        reference = session.execute(PARAM_QUERY,
                                    parameters=[QUERY_TERM, title])
        assert result.value_set() == reference.value_set()
    assert len(service.cache) == 1
    assert service.metrics.cache_hits == len(titles)


def test_shape_normalization_shares_cache_entries():
    service = fresh_service(fresh_database())
    spelled_one = "ACCESS p FROM p IN Paragraph WHERE p.number == ?"
    spelled_two = ("ACCESS   p\nFROM p IN Paragraph\n"
                   "WHERE p.number == ?1  -- same shape")
    first = service.execute(spelled_one, [2])
    second = service.execute(spelled_two, [2])
    assert second.metrics.cache_hit
    assert first.metrics.fingerprint == second.metrics.fingerprint
    assert len(service.cache) == 1


def test_prepared_handle_skips_parse_and_analyze():
    service = fresh_service(fresh_database())
    statement = service.prepare(PARAM_QUERY)
    assert statement.parameters == ("1", "2")
    result = service.execute(statement, [QUERY_TERM, TARGET_TITLE])
    assert result.metrics.cache_hit  # prepare() warmed the plan
    assert result.output_ref == "p"


def test_naive_and_optimized_plans_cache_separately():
    service = fresh_service(fresh_database())
    optimized = service.execute(PARAM_QUERY, [QUERY_TERM, TARGET_TITLE])
    naive = service.execute(PARAM_QUERY, [QUERY_TERM, TARGET_TITLE],
                            optimize=False)
    assert len(service.cache) == 2
    assert naive.value_set() == optimized.value_set()
    assert naive.plan.optimization is None
    assert optimized.plan.optimization is not None


def test_binding_errors_surface_before_execution():
    service = fresh_service(fresh_database())
    with pytest.raises(BindingError):
        service.execute(PARAM_QUERY, [QUERY_TERM])


# ----------------------------------------------------------------------
# invalidation: index DDL
# ----------------------------------------------------------------------
def test_creating_an_index_evicts_and_improves_the_plan():
    database = fresh_database()
    service = fresh_service(database)
    before = service.execute(NUMBER_QUERY, [2])
    assert not any(isinstance(node, IndexEqScan)
                   for node in walk_physical(before.plan.physical_plan))

    service.create_index("Paragraph", "number", kind="hash")
    after = assert_matches_fresh_session(
        service, NUMBER_QUERY, [2],
        "ACCESS p FROM p IN Paragraph WHERE p.number == 2")
    assert not after.metrics.cache_hit
    assert any(isinstance(node, IndexEqScan)
               for node in walk_physical(after.plan.physical_plan))
    assert before.value_set() == after.value_set()


def test_dropping_an_index_evicts_the_index_plan():
    database = fresh_database()
    service = fresh_service(database)
    service.create_index("Paragraph", "number", kind="hash")
    indexed = service.execute(NUMBER_QUERY, [2])
    assert any(isinstance(node, IndexEqScan)
               for node in walk_physical(indexed.plan.physical_plan))

    service.drop_index("Paragraph", "number")
    # The cached index plan would now raise at execution; eviction must
    # replace it with a plan that still answers correctly.
    after = assert_matches_fresh_session(
        service, NUMBER_QUERY, [2],
        "ACCESS p FROM p IN Paragraph WHERE p.number == 2")
    assert not after.metrics.cache_hit
    assert not any(isinstance(node, IndexEqScan)
                   for node in walk_physical(after.plan.physical_plan))
    assert after.value_set() == indexed.value_set()


def test_dropping_a_missing_index_raises():
    service = fresh_service(fresh_database())
    with pytest.raises(IndexError_):
        service.drop_index("Paragraph", "number")


# ----------------------------------------------------------------------
# invalidation: knowledge registration
# ----------------------------------------------------------------------
def test_registering_knowledge_invalidates_every_cached_plan():
    database = fresh_database()
    service = fresh_service(database)
    service.execute(NUMBER_QUERY, [2])
    service.execute(PARAM_QUERY, [QUERY_TERM, TARGET_TITLE])
    assert len(service.cache) == 2

    invalidations_before = service.cache.statistics.invalidations
    service.register_knowledge(ConditionImplication(
        class_name="Paragraph", variable="p",
        antecedent="p->wordCount() > 200",
        consequent="p IS-IN Paragraph->largeParagraphs()",
        name="test-implication"))

    result = assert_matches_fresh_session(
        service, NUMBER_QUERY, [2],
        "ACCESS p FROM p IN Paragraph WHERE p.number == 2")
    assert not result.metrics.cache_hit
    assert service.cache.statistics.invalidations > invalidations_before


# ----------------------------------------------------------------------
# invalidation: data drift
# ----------------------------------------------------------------------
def test_bulk_data_change_evicts_cached_plans():
    database = fresh_database()
    service = fresh_service(database, reoptimize_fraction=0.25)
    service.execute(NUMBER_QUERY, [2])
    assert service.execute(NUMBER_QUERY, [2]).metrics.cache_hit

    # Bulk load: create far more than reoptimize_fraction × object_count.
    for i in range(database.object_count() // 2):
        database.create("Document", title=f"bulk {i}", sections=set())

    after = assert_matches_fresh_session(
        service, NUMBER_QUERY, [2],
        "ACCESS p FROM p IN Paragraph WHERE p.number == 2")
    assert not after.metrics.cache_hit


def test_small_data_change_keeps_cached_plans_and_sees_new_data():
    database = fresh_database()
    service = fresh_service(database)
    title_query = "ACCESS d FROM d IN Document WHERE d.title == ?"
    before = service.execute(title_query, ["new document"])
    assert len(before) == 0

    database.create("Document", title="new document", sections=set())
    after = service.execute(title_query, ["new document"])
    # One insert is far below the drift threshold: the plan survives, and
    # because prepared plans read state at run time it sees the new object.
    assert after.metrics.cache_hit
    assert len(after) == 1


# ----------------------------------------------------------------------
# cache mechanics
# ----------------------------------------------------------------------
def test_plan_cache_is_a_bounded_lru():
    database = fresh_database()
    service = fresh_service(database, cache_capacity=2)
    queries = [f"ACCESS p FROM p IN Paragraph WHERE p.number == {n}"
               for n in range(3)]
    for query in queries:
        service.execute(query)
    assert len(service.cache) == 2
    assert service.cache.statistics.evictions == 1
    # The oldest shape was evicted: running it again is a miss.
    again = service.execute(queries[0])
    assert not again.metrics.cache_hit


def test_plan_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def test_concurrent_execution_matches_serial_results():
    database = fresh_database()
    service = fresh_service(database)
    session = fresh_session(database)
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})
    requests = [(PARAM_QUERY, [QUERY_TERM, titles[i % len(titles)]])
                for i in range(24)]
    results = service.run_concurrent(requests, workers=6)
    assert len(results) == len(requests)
    for (query, parameters), result in zip(requests, results):
        reference = session.execute(query, parameters=parameters)
        assert result.value_set() == reference.value_set()
    assert service.metrics.queries == len(requests)
    assert service.metrics.cache_hits >= len(requests) - 1


def test_concurrent_mixed_shapes_share_the_cache():
    database = fresh_database()
    service = fresh_service(database)
    requests = []
    for i in range(12):
        requests.append((NUMBER_QUERY, [i % 5]))
        requests.append((PARAM_QUERY, [QUERY_TERM, TARGET_TITLE]))
    results = service.run_concurrent(requests, workers=4)
    assert len(service.cache) == 2
    session = fresh_session(database)
    for (query, parameters), result in zip(requests, results):
        assert result.value_set() == session.execute(
            query, parameters=parameters).value_set()


# ----------------------------------------------------------------------
# metrics and the engine-level one-shot path
# ----------------------------------------------------------------------
def test_service_metrics_snapshot_accounts_for_hits_and_misses():
    service = fresh_service(fresh_database())
    service.execute(NUMBER_QUERY, [1])
    service.execute(NUMBER_QUERY, [2])
    service.execute(NUMBER_QUERY, [3])
    snapshot = service.metrics.snapshot()
    assert snapshot["queries"] == 3
    assert snapshot["cache_misses"] == 1
    assert snapshot["cache_hits"] == 2
    assert 0.0 < snapshot["hit_rate"] < 1.0
    assert snapshot["total_optimize_seconds"] > 0.0


def test_run_query_reuses_a_cached_service_per_database():
    from repro.engine import _service_for, run_query
    database = fresh_database()
    knowledge = document_knowledge(database.schema)

    first = run_query(database, NUMBER_QUERY, knowledge=knowledge,
                      parameters=[2])
    second = run_query(database, NUMBER_QUERY, knowledge=knowledge,
                       parameters=[3])
    assert first.output_ref == "p"
    service = _service_for(database, knowledge)
    assert service is _service_for(database, knowledge)
    assert service.metrics.queries == 2
    assert service.metrics.cache_hits == 1  # same shape, second call hit

    reference = fresh_session(database).execute(
        "ACCESS p FROM p IN Paragraph WHERE p.number == 3")
    assert second.value_set() == reference.value_set()


def test_run_query_naive_flag_still_works():
    from repro.engine import run_query
    database = fresh_database()
    knowledge = document_knowledge(database.schema)
    optimized = run_query(database, NUMBER_QUERY, knowledge=knowledge,
                          parameters=[2])
    naive = run_query(database, NUMBER_QUERY, knowledge=knowledge,
                      optimize=False, parameters=[2])
    assert naive.value_set() == optimized.value_set()
    assert naive.optimization is None


def test_explain_describes_the_cached_plan():
    service = fresh_service(fresh_database())
    text = service.explain(NUMBER_QUERY)
    assert "physical plan" in text or "naive plan" in text


def test_run_query_picks_up_knowledge_added_in_place():
    """Knowledge add()ed directly to the shared object after the service was
    cached must still reach the optimizer (the pre-service behaviour)."""
    from repro.engine import _service_for, run_query
    database = fresh_database()
    knowledge = document_knowledge(database.schema)
    run_query(database, NUMBER_QUERY, knowledge=knowledge, parameters=[2])
    version_before = _service_for(database, knowledge)._knowledge_version

    knowledge.add(ConditionImplication(
        class_name="Paragraph", variable="p",
        antecedent="p->wordCount() > 200",
        consequent="p IS-IN Paragraph->largeParagraphs()",
        name="in-place-implication"))
    result = run_query(database, NUMBER_QUERY, knowledge=knowledge,
                       parameters=[2])
    service = _service_for(database, knowledge)
    assert service._knowledge_version == version_before + 1
    assert result.value_set() == fresh_session(database).execute(
        "ACCESS p FROM p IN Paragraph WHERE p.number == 2").value_set()


def test_service_cache_for_run_query_is_bounded():
    from repro.engine import _MAX_CACHED_SERVICES, _SERVICES, run_query
    for _ in range(_MAX_CACHED_SERVICES + 3):
        run_query(fresh_database(2), "ACCESS d FROM d IN Document")
    assert len(_SERVICES) <= _MAX_CACHED_SERVICES


def test_read_lock_is_reentrant_while_a_writer_waits():
    """A reader re-entering on the same thread must not deadlock against a
    queued writer (nested service execution from a method implementation)."""
    import threading
    from repro.service import ReadWriteLock

    lock = ReadWriteLock()
    lock.acquire_read()
    writer_queued = threading.Event()
    writer_done = threading.Event()

    def writer():
        writer_queued.set()
        with lock.write_locked():
            writer_done.set()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    writer_queued.wait(timeout=5)
    import time
    time.sleep(0.05)  # let the writer reach acquire_write and queue up
    # Re-entrant read while the writer waits: must not block.
    lock.acquire_read()
    lock.release_read()
    lock.release_read()
    thread.join(timeout=5)
    assert writer_done.is_set()


def test_build_locks_do_not_accumulate():
    service = fresh_service(fresh_database())
    for n in range(5):
        service.execute(f"ACCESS p FROM p IN Paragraph WHERE p.number == {n}")
    assert not service._build_locks


# ----------------------------------------------------------------------
# concurrency stress: parallel plans under the plan cache
# ----------------------------------------------------------------------
METHOD_QUERY = "ACCESS p FROM p IN Paragraph WHERE p->contains_string(?)"


def parallel_service(database, **kwargs) -> QueryService:
    """A degree-4 service whose optimizer cannot rewrite the method away
    (semantic rules excluded), so method-bearing shapes plan parallel."""
    return QueryService(database,
                        knowledge=document_knowledge(database.schema),
                        exclude_tags=("semantic",), parallelism=4, **kwargs)


def test_run_concurrent_clients_execute_parallel_plans():
    from repro.physical.plans import uses_parallelism

    database = fresh_database()
    service = parallel_service(database)
    requests = [(METHOD_QUERY, ["word0005"]),
                (METHOD_QUERY, ["word0003"]),
                (NUMBER_QUERY, [1])] * 8
    results = service.run_concurrent(requests, workers=6)
    # 3 shapes, 24 requests: everything after the cold misses must hit
    snapshot = service.metrics.snapshot()
    assert snapshot["queries"] == len(requests)
    assert snapshot["cache_hits"] >= len(requests) - 3

    assert uses_parallelism(
        service.execute(METHOD_QUERY, ["word0005"]).plan.physical_plan)
    reference = fresh_session(database)
    for (query, parameters), result in zip(requests, results):
        expected = reference.execute(query, parameters=parameters)
        assert result.value_set() == expected.value_set()


def test_plan_cache_invalidation_during_concurrent_parallel_execution():
    database = fresh_database()
    service = parallel_service(database)
    requests = [(NUMBER_QUERY, [n % 4]) for n in range(12)]

    service.run_concurrent(requests, workers=4)
    # index DDL between batches strictly invalidates the cached plan …
    service.create_index("Paragraph", "number", kind="hash")
    invalidations_before = service.cache.statistics.invalidations
    results = service.run_concurrent(requests, workers=4)
    assert service.cache.statistics.invalidations > invalidations_before

    # … and the re-prepared plans still answer correctly.
    reference = fresh_session(database)
    for (query, parameters), result in zip(requests, results):
        expected = reference.execute(query, parameters=parameters)
        assert result.value_set() == expected.value_set()


def test_index_ddl_races_parallel_query_execution():
    """Writers (index DDL) must serialize against in-flight parallel
    executions: every query sees either the indexed or the scanned plan,
    never a plan whose index disappeared mid-run."""
    import threading

    database = fresh_database()
    service = parallel_service(database)
    expected = fresh_session(database).execute(
        NUMBER_QUERY, parameters=[1]).value_set()
    errors: list[Exception] = []
    done = threading.Event()

    def ddl_loop():
        try:
            for _ in range(25):
                service.create_index("Paragraph", "number", kind="hash")
                service.drop_index("Paragraph", "number")
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            done.set()

    thread = threading.Thread(target=ddl_loop, daemon=True)
    thread.start()
    queries = 0
    while not done.is_set() or queries < 20:
        result = service.execute(NUMBER_QUERY, [1])
        assert result.value_set() == expected
        queries += 1
        if queries > 2000:  # pragma: no cover - liveness guard
            break
    thread.join(timeout=20)
    assert done.is_set() and not errors
    assert queries >= 20


def test_mixed_parallel_and_method_shapes_under_ddl_and_concurrency():
    """The full stress: concurrent clients over parallel + sequential
    shapes, with index DDL injected between batches; results stay equal to
    a fresh sequential session throughout."""
    database = fresh_database()
    service = parallel_service(database)
    requests = [(METHOD_QUERY, ["word0003"]), (NUMBER_QUERY, [2])] * 6

    for round_number in range(3):
        results = service.run_concurrent(requests, workers=5)
        reference = fresh_session(database)
        for (query, parameters), result in zip(requests, results):
            expected = reference.execute(query, parameters=parameters)
            assert result.value_set() == expected.value_set()
        if round_number == 0:
            service.create_index("Paragraph", "number", kind="sorted")
        elif round_number == 1:
            service.drop_index("Paragraph", "number")


# ----------------------------------------------------------------------
# adaptive feedback re-optimization
# ----------------------------------------------------------------------
def _skewed_order_database():
    """Order/Region with a rare 'urgent' status that drift makes common."""
    import random

    from repro.datamodel.database import Database
    from repro.datamodel.schema import ClassDef, PropertyDef, Schema
    from repro.datamodel.types import STRING

    schema = Schema("feedback")
    for name, props in (("Order", ("status", "region")),
                        ("Region", ("name", "kind"))):
        class_def = ClassDef(name=name)
        for prop in props:
            class_def.add_property(PropertyDef(prop, STRING))
        schema.add_class(class_def)
    database = Database(schema, name="feedback")
    rng = random.Random(7)
    regions = [f"R{i}" for i in range(40)]
    database.create_many("Order", [
        {"status": rng.choice(["open"] * 49 + ["urgent"]),
         "region": rng.choice(regions)} for _ in range(300)])
    database.create_many("Region",
                         [{"name": name, "kind": "common"}
                          for name in regions])
    return database


FEEDBACK_QUERY = ("ACCESS o FROM o IN Order, r IN Region "
                  "WHERE o.status == 'urgent' AND o.region == r.name")


def _drift_orders_to_urgent(database, count=70):
    """Flip *count* orders to 'urgent' — enough to wreck the MCV-based
    selectivity estimate, few enough that the statistics stay 'fresh'
    (below the staleness fraction) and the plan cache keeps the entry."""
    flips = [oid for oid in database.extension("Order")
             if database.get(oid).get("status") != "urgent"][:count]
    for oid in flips:
        database.update(oid, status="urgent")


def test_feedback_corrects_and_replans_after_drift():
    database = _skewed_order_database()
    service = QueryService(database)
    service.execute("ANALYZE")

    first = service.execute(FEEDBACK_QUERY)
    snapshot = service.metrics.snapshot()
    assert snapshot["feedback_evictions"] == 0
    assert snapshot["plans_reoptimized"] == 0

    _drift_orders_to_urgent(database)
    # post-drift execution is profiled, detects the divergence, corrects
    second = service.execute(FEEDBACK_QUERY)
    assert service.metrics.snapshot()["feedback_evictions"] >= 1
    assert database.stats_catalog.correction_count() >= 1

    # the correction evicted the plan: the next execution replans against
    # the observed selectivity, and the estimate now matches the actual
    third = service.execute(FEEDBACK_QUERY)
    assert not third.metrics.cache_hit
    snapshot = service.metrics.snapshot()
    assert snapshot["plans_reoptimized"] >= 1

    actual = len(third.rows)
    estimated = third.plan.optimization.best_cost.cardinality
    assert actual == len(second.rows) > len(first.rows)
    assert max(estimated, actual) / max(min(estimated, actual), 1.0) < 2.0
    assert third.plan.optimization.stats_corrections >= 1
    assert "statistics corrections applied:" in \
        service.explain(FEEDBACK_QUERY)

    # steady state: no oscillation, the corrected plan stays cached
    fourth = service.execute(FEEDBACK_QUERY)
    assert fourth.metrics.cache_hit
    assert service.metrics.snapshot()["feedback_evictions"] == \
        snapshot["feedback_evictions"]


def test_feedback_never_changes_results():
    """The drift oracle: replanning after feedback is invisible in the
    result multisets — every execution equals a fresh naive session."""
    database = _skewed_order_database()
    service = QueryService(database)
    service.execute("ANALYZE")

    def reference():
        fresh = Session(database)
        return fresh.execute(FEEDBACK_QUERY, optimize=False).value_set()

    assert service.execute(FEEDBACK_QUERY).value_set() == reference()
    _drift_orders_to_urgent(database)
    for _ in range(3):  # spans the correct → evict → replan transitions
        assert service.execute(FEEDBACK_QUERY).value_set() == reference()
    assert service.metrics.snapshot()["feedback_evictions"] >= 1


def test_feedback_can_be_disabled():
    database = _skewed_order_database()
    service = QueryService(database, adaptive_feedback=False)
    service.execute("ANALYZE")
    service.execute(FEEDBACK_QUERY)
    _drift_orders_to_urgent(database)
    for _ in range(3):
        service.execute(FEEDBACK_QUERY)
    snapshot = service.metrics.snapshot()
    assert snapshot["feedback_evictions"] == 0
    assert snapshot["plans_reoptimized"] == 0
    assert database.stats_catalog.correction_count() == 0


def test_feedback_needs_analyzed_statistics():
    """Without ANALYZE every estimate is a schema default — feedback must
    not chase that noise with corrections."""
    database = _skewed_order_database()
    service = QueryService(database)
    for _ in range(3):
        service.execute(FEEDBACK_QUERY)
    assert service.metrics.snapshot()["feedback_evictions"] == 0
    assert database.stats_catalog.correction_count() == 0
