"""Tests for the index structures and the external IR engine."""

from __future__ import annotations

import pytest

from repro.datamodel.indexes import HashIndex, IndexRegistry, SortedIndex
from repro.datamodel.ir import InvertedTextIndex, tokenize
from repro.datamodel.oid import OID
from repro.errors import IndexError_


def oid(serial: int) -> OID:
    return OID("Paragraph", serial)


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("Document", "title")
        index.insert("a", oid(1))
        index.insert("a", oid(2))
        index.insert("b", oid(3))
        assert index.lookup("a") == {oid(1), oid(2)}
        assert index.lookup("b") == {oid(3)}
        assert index.lookup("missing") == set()
        assert len(index) == 3
        assert index.distinct_keys() == 2

    def test_lookup_returns_copy(self):
        index = HashIndex("Document", "title")
        index.insert("a", oid(1))
        result = index.lookup("a")
        result.add(oid(99))
        assert index.lookup("a") == {oid(1)}

    def test_remove_and_update(self):
        index = HashIndex("Document", "title")
        index.insert("a", oid(1))
        index.update("a", "b", oid(1))
        assert index.lookup("a") == set()
        assert index.lookup("b") == {oid(1)}
        index.remove("b", oid(1))
        assert len(index) == 0

    def test_remove_missing_entry_raises(self):
        index = HashIndex("Document", "title")
        with pytest.raises(IndexError_):
            index.remove("a", oid(1))

    def test_unhashable_keys_are_normalized(self):
        index = HashIndex("Document", "tags")
        index.insert(["a", "b"], oid(1))
        assert index.lookup(["a", "b"]) == {oid(1)}
        index.insert({"x"}, oid(2))
        assert index.lookup({"x"}) == {oid(2)}

    def test_lookup_counter(self):
        index = HashIndex("Document", "title")
        index.lookup("a")
        index.lookup("b")
        assert index.lookup_count == 2


class TestSortedIndex:
    def build(self) -> SortedIndex:
        index = SortedIndex("Paragraph", "number")
        for serial, key in enumerate([5, 1, 3, 3, 9], start=1):
            index.insert(key, oid(serial))
        return index

    def test_lookup_equality(self):
        index = self.build()
        assert index.lookup(3) == {oid(3), oid(4)}
        assert index.lookup(7) == set()

    def test_range_inclusive_exclusive(self):
        index = self.build()
        assert index.range(3, 5) == {oid(1), oid(3), oid(4)}
        assert index.range(3, 5, include_low=False) == {oid(1)}
        assert index.range(3, 5, include_high=False) == {oid(3), oid(4)}

    def test_open_ended_ranges(self):
        index = self.build()
        assert index.range(None, 3) == {oid(2), oid(3), oid(4)}
        assert index.range(5, None) == {oid(1), oid(5)}
        assert index.range(None, None) == {oid(i) for i in range(1, 6)}

    def test_min_max(self):
        index = self.build()
        assert index.min_key() == 1
        assert index.max_key() == 9
        assert SortedIndex("X", "y").min_key() is None

    def test_remove_and_update(self):
        index = self.build()
        index.remove(3, oid(3))
        assert index.lookup(3) == {oid(4)}
        index.update(9, 2, oid(5))
        assert index.lookup(2) == {oid(5)}
        with pytest.raises(IndexError_):
            index.remove(42, oid(1))


class TestIndexRegistry:
    def test_register_and_get(self):
        registry = IndexRegistry()
        registry.create_hash_index("Document", "title")
        registry.create_sorted_index("Paragraph", "number")
        assert registry.has("Document", "title")
        assert registry.get("Paragraph", "number").kind == "sorted"
        assert registry.get("Nope", "x") is None
        assert len(registry) == 2
        assert len(registry.for_class("Document")) == 1

    def test_duplicate_index_rejected(self):
        registry = IndexRegistry()
        registry.create_hash_index("Document", "title")
        with pytest.raises(IndexError_):
            registry.create_sorted_index("Document", "title")

    def test_notify_insert_and_update(self):
        registry = IndexRegistry()
        index = registry.create_hash_index("Document", "title")
        registry.notify_insert("Document", "title", "a", oid(1))
        registry.notify_insert("Other", "title", "a", oid(2))  # no such index: no-op
        assert index.lookup("a") == {oid(1)}
        registry.notify_update("Document", "title", "a", "b", oid(1))
        assert index.lookup("b") == {oid(1)}


class TestTokenizer:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_tokenize_empty(self):
        assert tokenize("") == []
        assert tokenize("!!!") == []


class TestInvertedTextIndex:
    def build(self) -> InvertedTextIndex:
        engine = InvertedTextIndex()
        engine.index_text(oid(1), "query optimization for methods")
        engine.index_text(oid(2), "semantic query optimization")
        engine.index_text(oid(3), "object oriented databases")
        return engine

    def test_retrieve_single_word(self):
        engine = self.build()
        assert engine.retrieve("query") == {oid(1), oid(2)}
        assert engine.retrieve("databases") == {oid(3)}
        assert engine.retrieve("missing") == set()

    def test_retrieve_multi_word_is_conjunctive_and_verified(self):
        engine = self.build()
        assert engine.retrieve("query optimization") == {oid(1), oid(2)}
        # both words occur in oid(1) but not adjacently in oid(2)? they are —
        # use a phrase that only matches one document
        assert engine.retrieve("semantic query") == {oid(2)}

    def test_retrieve_is_case_insensitive(self):
        engine = self.build()
        assert engine.retrieve("QUERY") == {oid(1), oid(2)}

    def test_scan_contains(self):
        engine = self.build()
        assert engine.scan_contains(oid(1), "optimization")
        assert not engine.scan_contains(oid(3), "optimization")
        assert not engine.scan_contains(oid(99), "anything")

    def test_reindex_replaces_old_content(self):
        engine = self.build()
        engine.index_text(oid(1), "completely different words")
        assert oid(1) not in engine.retrieve("query")
        assert oid(1) in engine.retrieve("different")

    def test_remove(self):
        engine = self.build()
        engine.remove(oid(2))
        assert engine.retrieve("semantic") == set()
        assert engine.document_count() == 2
        engine.remove(oid(99))  # removing an unknown OID is a no-op

    def test_counters_track_work(self):
        engine = self.build()
        engine.retrieve("query")
        engine.scan_contains(oid(1), "methods")
        counters = engine.counters()
        assert counters["retrieve_calls"] == 1
        assert counters["contains_calls"] == 1
        assert counters["chars_scanned"] > 0
        assert counters["cost_units"] > 0
        engine.reset_counters()
        assert engine.counters()["cost_units"] == 0

    def test_vocabulary_and_posting_sizes(self):
        engine = self.build()
        assert engine.vocabulary_size() > 5
        assert engine.posting_list_size("query") == 2
        assert engine.document_frequency(["query", "missing"]) == {
            "query": 2, "missing": 0}
