"""Bind parameters: lexing, parsing, analysis, binding and execution."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import (
    BinaryOp,
    Const,
    Parameter,
    Var,
    bind_parameters,
    parameters_used,
)
from repro.errors import BindingError, ExecutionError, VQLSyntaxError
from repro.physical.plans import IndexEqScan, walk_physical
from repro.session import Session
from repro.vql.analyzer import analyze_query
from repro.vql.bindings import bind_query, resolve_bindings
from repro.vql.parser import parse_expression, parse_query
from repro.workloads import document_knowledge, generate_document_database
from repro.workloads.documents import QUERY_TERM, TARGET_TITLE


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def test_positional_parameters_auto_number_in_parse_order():
    expr = parse_expression("(x == ?) AND (y == ?)")
    assert parameters_used(expr) == ["1", "2"]


def test_explicit_positional_numbers_and_reuse():
    expr = parse_expression("(x == ?2) AND (y == ?1) AND (z == ?2)")
    assert set(parameters_used(expr)) == {"1", "2"}


def test_plain_marker_continues_after_explicit_number():
    # SQLite's ?NNN discipline: a plain ? takes the next free position.
    expr = parse_expression("(x == ?5) AND (y == ?)")
    assert set(parameters_used(expr)) == {"5", "6"}


def test_named_parameters_parse_and_print_round_trip():
    expr = parse_expression("title == :title")
    assert expr == BinaryOp("==", Var("title"), Parameter("title"))
    assert parse_expression(str(expr)) == expr


def test_positional_parameter_prints_with_position():
    assert str(Parameter("3")) == "?3"
    assert parse_expression("x == ?3").right == Parameter("3")


def test_named_parameter_requires_adjacent_identifier():
    with pytest.raises(VQLSyntaxError):
        parse_expression("x == : name")


def test_zero_is_not_a_valid_position():
    with pytest.raises(VQLSyntaxError):
        parse_expression("x == ?0")


def test_parameter_inside_tuple_constructor():
    expr = parse_expression("[value: :v]")
    assert parameters_used(expr) == ["v"]


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
def test_analyzer_collects_parameters_in_clause_order(doc_schema):
    query = parse_query(
        "ACCESS [t: d.title, q: :accessed] FROM d IN Document "
        "WHERE d.title == :wanted")
    analyzed = analyze_query(query, doc_schema)
    assert analyzed.parameters == ("accessed", "wanted")


def test_analyzer_accepts_parameters_in_method_arguments(doc_schema):
    query = parse_query(
        "ACCESS p FROM p IN Paragraph WHERE p->contains_string(?)")
    analyzed = analyze_query(query, doc_schema)
    assert analyzed.parameters == ("1",)


# ----------------------------------------------------------------------
# binding resolution
# ----------------------------------------------------------------------
def test_resolve_positional_bindings():
    assert resolve_bindings(("1", "2"), ["a", "b"]) == {"1": "a", "2": "b"}


def test_resolve_named_bindings():
    assert resolve_bindings(("term",), {"term": "x"}) == {"term": "x"}


def test_missing_positional_value_is_rejected():
    with pytest.raises(BindingError, match=r"\?2"):
        resolve_bindings(("1", "2"), ["only-one"])


def test_surplus_positional_values_are_rejected():
    with pytest.raises(BindingError, match="positional"):
        resolve_bindings(("1",), ["a", "b"])


def test_unknown_named_value_is_rejected():
    with pytest.raises(BindingError, match="bogus"):
        resolve_bindings(("term",), {"term": "x", "bogus": 1})


def test_named_parameters_cannot_bind_positionally():
    with pytest.raises(BindingError, match=":term"):
        resolve_bindings(("term",), ["x"])


def test_no_values_for_parametrized_query_is_rejected():
    with pytest.raises(BindingError, match="no values"):
        resolve_bindings(("1",), None)


def test_bind_parameters_substitutes_constants():
    expr = parse_expression("x == :v")
    bound = bind_parameters(expr, {"v": 42})
    assert bound == BinaryOp("==", Var("x"), Const(42))


def test_bind_query_covers_all_clauses(doc_schema):
    query = parse_query(
        "ACCESS [t: :tag] FROM d IN Document WHERE d.title == :t")
    bound = bind_query(query, {"tag": "x", "t": "y"})
    assert not parameters_used(bound.access)
    assert bound.where is not None and not parameters_used(bound.where)


# ----------------------------------------------------------------------
# execution through a session (substitution path)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def param_session() -> Session:
    database = generate_document_database(n_documents=6)
    return Session(database, knowledge=document_knowledge(database.schema))


PARAM_QUERY = ("ACCESS p FROM p IN Paragraph "
               "WHERE p->contains_string(?) AND (p->document()).title == ?")
NAMED_QUERY = ("ACCESS p FROM p IN Paragraph "
               "WHERE p->contains_string(:term) AND "
               "(p->document()).title == :title")
LITERAL_QUERY = (f"ACCESS p FROM p IN Paragraph "
                 f"WHERE p->contains_string('{QUERY_TERM}') AND "
                 f"(p->document()).title == '{TARGET_TITLE}'")


def test_positional_execution_matches_literal_query(param_session):
    literal = param_session.execute(LITERAL_QUERY)
    bound = param_session.execute(PARAM_QUERY,
                                  parameters=[QUERY_TERM, TARGET_TITLE])
    assert bound.value_set() == literal.value_set()
    assert len(bound) > 0


def test_named_execution_matches_literal_query(param_session):
    literal = param_session.execute(LITERAL_QUERY)
    bound = param_session.execute(
        NAMED_QUERY, parameters={"term": QUERY_TERM, "title": TARGET_TITLE})
    assert bound.value_set() == literal.value_set()


def test_naive_execution_supports_parameters(param_session):
    optimized = param_session.execute(PARAM_QUERY,
                                      parameters=[QUERY_TERM, TARGET_TITLE])
    naive = param_session.execute_naive(PARAM_QUERY,
                                        parameters=[QUERY_TERM, TARGET_TITLE])
    assert naive.value_set() == optimized.value_set()


def test_unbound_parameter_fails_at_execution(param_session):
    with pytest.raises(BindingError):
        param_session.execute(PARAM_QUERY)


def test_rebinding_changes_the_result(param_session):
    database = param_session.database
    titles = sorted({database.value(oid, "title")
                     for oid in database.extension("Document")})
    results = [param_session.execute(PARAM_QUERY,
                                     parameters=[QUERY_TERM, title])
               for title in titles]
    assert sum(len(result) for result in results) > 0
    assert len({frozenset(result.value_set()) for result in results}) > 1


# ----------------------------------------------------------------------
# parameterized index access paths
# ----------------------------------------------------------------------
def test_optimizer_uses_index_for_parameterized_equality():
    database = generate_document_database(n_documents=6)
    database.create_hash_index("Paragraph", "number")
    from repro.service import QueryService
    service = QueryService(database,
                           knowledge=document_knowledge(database.schema))
    result = service.execute(
        "ACCESS p FROM p IN Paragraph WHERE p.number == ?", [2])
    scans = [node for node in walk_physical(result.plan.physical_plan)
             if isinstance(node, IndexEqScan)]
    assert scans and scans[0].key == Parameter("1")

    session = Session(database,
                      knowledge=document_knowledge(database.schema))
    reference = session.execute(
        "ACCESS p FROM p IN Paragraph WHERE p.number == 2")
    assert result.value_set() == reference.value_set()


def test_evaluator_raises_on_unbound_parameter():
    from repro.physical.evaluator import evaluate
    database = generate_document_database(n_documents=2)
    with pytest.raises(ExecutionError, match="no bound value"):
        evaluate(Parameter("t"), {}, database)
