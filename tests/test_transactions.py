"""MVCC snapshot isolation and BEGIN/COMMIT/ROLLBACK transactions.

Covers the reader/writer lock's invariant enforcement, snapshot reads that
are never blocked by (or exposed to) the write gate, streamed cursors that
observe one stable snapshot for their whole lifetime, the transactional
Connection protocol (statement words, first-writer-wins conflicts, atomic
apply, rollback), and the lifecycle fixes (close() warns about discarded
mutations, ``with`` rolls back when the body raised).
"""

from __future__ import annotations

import threading

import pytest

from repro import QueryService, connect
from repro.errors import (
    ServiceError,
    TransactionConflictError,
    TransactionError,
)
from repro.service.concurrency import ReadWriteLock
from repro.workloads import generate_document_database


@pytest.fixture()
def database():
    return generate_document_database(n_documents=3)


def state_snapshot(database):
    """Every stored object's values, per-class extension order and the
    live object count — the whole externally observable data state."""
    objects = {oid: dict(obj.values)
               for oid, obj in sorted(database._objects.items())}
    extensions = {name: list(database.extension(name, deep=False))
                  for name in database.schema.class_names()}
    return objects, extensions, database.object_count()


# ----------------------------------------------------------------------
# ReadWriteLock invariants
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_unbalanced_release_read_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError, match="release_read"):
            lock.release_read()

    def test_unbalanced_release_write_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError, match="release_write"):
            lock.release_write()

    def test_release_write_from_wrong_thread_raises(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        errors = []

        def release():
            try:
                lock.release_write()
            except RuntimeError as exc:
                errors.append(exc)
        thread = threading.Thread(target=release)
        thread.start()
        thread.join(timeout=5)
        lock.release_write()
        assert len(errors) == 1

    def test_unbalanced_release_does_not_wedge_writers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        with pytest.raises(RuntimeError):
            lock.release_read()  # depth bookkeeping rejects the extra call
            lock.release_read()
        # the reader count stayed balanced: a writer can still get in
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()
        thread = threading.Thread(target=writer)
        thread.start()
        assert acquired.wait(timeout=5)
        thread.join(timeout=5)

    def test_write_reentrancy_raises(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with pytest.raises(RuntimeError, match="not reentrant"):
                lock.acquire_write()

    def test_read_to_write_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_write_holder_may_read(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.read_locked():
                pass


# ----------------------------------------------------------------------
# snapshot reads vs the write gate
# ----------------------------------------------------------------------
class TestSnapshotReads:
    QUERY = "ACCESS d.title FROM d IN Document"

    def test_reader_completes_while_writer_holds_the_gate(self, database):
        service = QueryService(database)
        # warm the plan cache: builds (unlike executions) drain behind DDL
        baseline = service.execute(self.QUERY).value_set()
        gate_held = threading.Event()
        release = threading.Event()

        def writer():
            with service._gate.write_locked():
                gate_held.set()
                release.wait(timeout=10)
        thread = threading.Thread(target=writer)
        thread.start()
        assert gate_held.wait(timeout=5)
        done = threading.Event()
        rows = []

        def reader():
            rows.append(service.execute(self.QUERY).value_set())
            done.set()
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        completed = done.wait(timeout=5)
        release.set()
        thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert completed, "query execution blocked behind the write gate"
        assert rows[0] == baseline

    def test_open_stream_is_a_stable_snapshot(self, database):
        connection = connect(database)
        before = connection.execute(self.QUERY).fetchall()
        cursor = connection.execute(self.QUERY)
        first = cursor.fetchone()
        assert first in before
        # mutate every remaining row mid-stream through a second cursor
        connection.execute("UPDATE Document d SET title = 'REWRITTEN'")
        assert sorted([first] + cursor.fetchall()) == sorted(before)
        # a fresh statement sees the new state (one value: set semantics)
        assert connection.execute(self.QUERY).fetchall() == ["REWRITTEN"]

    def test_transaction_reads_its_begin_snapshot(self, database):
        service = QueryService(database)
        txn_conn = connect(database, service=service)
        other = connect(database, service=service)
        before = set(txn_conn.execute(self.QUERY).fetchall())
        txn_conn.execute("BEGIN")
        other.execute("INSERT INTO Document (title) VALUES ('late arrival')")
        assert set(txn_conn.execute(self.QUERY).fetchall()) == before
        txn_conn.execute("ROLLBACK")
        assert "late arrival" in set(txn_conn.execute(self.QUERY).fetchall())


# ----------------------------------------------------------------------
# the transaction protocol
# ----------------------------------------------------------------------
class TestTransactions:
    def test_begin_rollback_leaves_state_byte_identical(self, database):
        connection = connect(database)
        before = state_snapshot(database)
        cursor = connection.cursor()
        cursor.execute("BEGIN TRANSACTION")
        cursor.execute("INSERT INTO Document (title) VALUES ('doomed')")
        cursor.execute("UPDATE Document d SET title = 'mutated'")
        cursor.execute("DELETE FROM Section s")
        cursor.execute("ROLLBACK")
        assert state_snapshot(database) == before
        assert not connection.in_transaction

    def test_commit_applies_atomically(self, database):
        connection = connect(database)
        count = database.object_count()
        connection.execute("BEGIN")
        connection.execute("INSERT INTO Document (title) VALUES ('txn doc')")
        connection.execute(
            "UPDATE Document d SET author = 'txn author' "
            "WHERE d.title == 'txn doc'")
        # deferred writes: the transaction does not see its own insert,
        # so the update resolved zero targets at the begin snapshot
        assert database.object_count() == count
        cursor = connection.execute("COMMIT")
        assert cursor.rowcount == 1  # the insert; the update matched nothing
        assert database.object_count() == count + 1
        assert connection.execute(
            "ACCESS d.author FROM d IN Document WHERE d.title == 'txn doc'"
            ).fetchall() == [None]

    def test_interleaved_transactions_first_writer_wins(self, database):
        service = QueryService(database)
        first = connect(database, service=service)
        second = connect(database, service=service)
        target = "ACCESS d FROM d IN Document"
        assert first.execute(target).fetchall()  # sanity: targets exist
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE Document d SET author = 'first winner'")
        second.execute("UPDATE Document d SET author = 'second loser'")
        assert first.execute("COMMIT").rowcount > 0
        with pytest.raises(TransactionConflictError):
            second.execute("COMMIT")
        assert not second.in_transaction
        authors = set(connect(database, service=service).execute(
            "ACCESS d.author FROM d IN Document").fetchall())
        assert authors == {"first winner"}
        assert service.metrics.txn_conflicts == 1
        assert service.metrics.txn_commits == 1

    def test_delete_by_other_transaction_conflicts(self, database):
        service = QueryService(database)
        updater = connect(database, service=service)
        deleter = connect(database, service=service)
        updater.execute("BEGIN")
        updater.execute("UPDATE Document d SET author = 'too late'")
        deleter.execute("DELETE FROM Document d")
        with pytest.raises(TransactionConflictError):
            updater.execute("COMMIT")

    def test_nested_begin_raises(self, database):
        connection = connect(database)
        connection.execute("BEGIN")
        with pytest.raises(TransactionError, match="already open"):
            connection.execute("BEGIN WORK")
        connection.execute("ROLLBACK")

    def test_commit_and_rollback_require_a_transaction(self, database):
        connection = connect(database)
        with pytest.raises(TransactionError):
            connection.execute("COMMIT")
        with pytest.raises(TransactionError):
            connection.execute("ROLLBACK")

    def test_ddl_inside_a_transaction_raises(self, database):
        connection = connect(database)
        connection.execute("BEGIN")
        with pytest.raises(TransactionError, match="cannot run inside"):
            connection.execute("CREATE CLASS Tag (label: STRING)")
        with pytest.raises(TransactionError):
            connection.execute("ANALYZE Document")
        connection.execute("ROLLBACK")

    def test_transaction_control_outside_connection_raises(self, database):
        service = QueryService(database)
        with pytest.raises(TransactionError):
            service.execute("BEGIN")

    def test_executemany_buffers_into_the_transaction(self, database):
        connection = connect(database)
        count = database.object_count()
        connection.execute("BEGIN")
        connection.executemany(
            "INSERT INTO Document (title) VALUES (:t)",
            [{"t": f"bulk {i}"} for i in range(5)])
        assert database.object_count() == count
        assert connection.commit() == 5
        assert database.object_count() == count + 5


# ----------------------------------------------------------------------
# connection lifecycle
# ----------------------------------------------------------------------
class TestConnectionLifecycle:
    def test_close_warns_about_discarded_mutations(self, database):
        connection = connect(database, autocommit=False)
        connection.execute("INSERT INTO Document (title) VALUES ('lost')")
        with pytest.warns(ResourceWarning, match="discarded 1"):
            connection.close()

    def test_close_warns_about_an_open_transaction(self, database):
        connection = connect(database)
        connection.execute("BEGIN")
        connection.execute("INSERT INTO Document (title) VALUES ('lost')")
        with pytest.warns(ResourceWarning, match="discarded 1"):
            connection.close()

    def test_close_is_idempotent_and_quiet_when_clean(self, database):
        import warnings
        connection = connect(database)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            connection.close()
            connection.close()
        with pytest.raises(ServiceError):
            connection.cursor()

    def test_context_manager_rolls_back_when_the_body_raised(self, database):
        count = database.object_count()
        with pytest.raises(RuntimeError, match="boom"):
            with connect(database, autocommit=False) as connection:
                connection.execute(
                    "INSERT INTO Document (title) VALUES ('never')")
                raise RuntimeError("boom")
        assert database.object_count() == count

    def test_context_manager_rolls_back_an_open_transaction(self, database):
        count = database.object_count()
        with pytest.raises(RuntimeError, match="boom"):
            with connect(database) as connection:
                connection.execute("BEGIN")
                connection.execute(
                    "INSERT INTO Document (title) VALUES ('never')")
                raise RuntimeError("boom")
        assert database.object_count() == count

    def test_begin_with_deferred_buffer_raises(self, database):
        connection = connect(database, autocommit=False)
        connection.execute("INSERT INTO Document (title) VALUES ('pending')")
        with pytest.raises(TransactionError, match="autocommit=False"):
            connection.begin()
        connection.rollback()
        connection.begin()
        connection.rollback()
