"""Tests for the cost model, the search engine, the optimizer generator and
the optimization trace."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Const
from repro.algebra.operators import Get, Join, Project, Select
from repro.errors import OptimizerError
from repro.optimizer.builtin_rules import standard_rules
from repro.optimizer.cost import CostModel
from repro.optimizer.generator import OptimizerGenerator
from repro.optimizer.knowledge import SchemaKnowledge
from repro.optimizer.rules import RuleSet
from repro.optimizer.search import Optimizer, OptimizerOptions
from repro.optimizer.statistics import OptimizerStatistics
from repro.optimizer.trace import OptimizationTrace
from repro.physical.plans import (
    ClassScan,
    ExpressionSetScan,
    Filter,
    HashJoin,
    NestedLoopJoin,
    SetProbeFilter,
    walk_physical,
)
from repro.vql.analyzer import resolve_class_references
from repro.vql.parser import parse_expression

GET_P = Get("p", "Paragraph")
GET_D = Get("d", "Document")


@pytest.fixture()
def cost_model(doc_database):
    return CostModel(doc_database.schema, doc_database)


class TestCostModel:
    def test_class_scan_cardinality_uses_extension_size(self, cost_model,
                                                        doc_database):
        estimate = cost_model.estimate(ClassScan("p", "Paragraph"))
        assert estimate.cardinality == doc_database.extension_size("Paragraph")
        assert estimate.cost > 0

    def test_extension_size_without_database_uses_default(self, doc_schema):
        model = CostModel(doc_schema, database=None)
        assert model.extension_size("Paragraph") == CostModel.DEFAULT_EXTENSION_SIZE

    def test_external_method_filter_is_expensive(self, cost_model, doc_database):
        scan = ClassScan("p", "Paragraph")
        cheap = Filter(parse_expression("p.number == 1"), scan)
        expensive = Filter(parse_expression("p->contains_string('x')"), scan)
        assert cost_model.estimate(expensive).cost > cost_model.estimate(cheap).cost

    def test_expression_set_scan_cheaper_than_external_filter(self, cost_model,
                                                              doc_database):
        member = resolve_class_references(
            parse_expression("Paragraph->retrieve_by_string('x')"),
            doc_database.schema, set())
        scan_all = Filter(parse_expression("p->contains_string('x')"),
                          ClassScan("p", "Paragraph"))
        direct = ExpressionSetScan("p", member)
        assert cost_model.estimate(direct).cost < cost_model.estimate(scan_all).cost

    def test_hash_join_cheaper_than_nested_loop(self, cost_model):
        left = ClassScan("p", "Paragraph")
        right = ClassScan("q", "Paragraph")
        condition = parse_expression("p.section == q.section")
        nested = NestedLoopJoin(condition, left, right)
        hashed = HashJoin(parse_expression("p.section"),
                          parse_expression("q.section"), left, right)
        assert cost_model.estimate(hashed).cost < cost_model.estimate(nested).cost

    def test_filter_selectivity_reduces_cardinality(self, cost_model):
        scan = ClassScan("p", "Paragraph")
        filtered = Filter(parse_expression("p.number == 1"), scan)
        assert cost_model.estimate(filtered).cardinality < \
            cost_model.estimate(scan).cardinality

    def test_conjunction_is_more_selective(self, cost_model):
        scan = ClassScan("p", "Paragraph")
        one = Filter(parse_expression("p.number == 1"), scan)
        two = Filter(parse_expression("p.number == 1 AND p.number == 2"), scan)
        assert cost_model.estimate(two).cardinality < \
            cost_model.estimate(one).cardinality

    def test_property_fanout_measured_from_database(self, cost_model):
        fanout = cost_model.property_fanout("Document", "sections")
        assert fanout == pytest.approx(4.0)
        assert cost_model.property_fanout("Section", "paragraphs") == pytest.approx(5.0)

    def test_method_cost_lookup(self, cost_model):
        assert cost_model.method_cost("contains_string") == 25.0
        assert cost_model.method_cost("unknown_method") == CostModel.DEFAULT_METHOD_COST

    def test_method_result_cardinality_hint(self, cost_model):
        assert cost_model.method_result_cardinality("select_by_index") == 2.0
        assert cost_model.method_result_cardinality("document") == 1.0

    def test_expression_cardinality_of_navigation(self, cost_model, doc_database):
        expr = resolve_class_references(
            parse_expression("Document->select_by_index('t').sections.paragraphs"),
            doc_database.schema, set())
        cardinality = cost_model.expression_cardinality(expr)
        # 2 documents (hint) x 4 sections x 5 paragraphs
        assert cardinality == pytest.approx(40.0)

    def test_selectivity_bounds(self, cost_model):
        condition = parse_expression("p.number == 1 OR p.number == 2")
        assert 0.0 < cost_model.condition_selectivity(condition, 100) <= 1.0
        negated = parse_expression("NOT p.number == 1")
        assert cost_model.condition_selectivity(negated, 100) == pytest.approx(0.95)


class TestOptimizerSearch:
    def optimizer(self, doc_database, rule_set=None, **options):
        return Optimizer(
            schema=doc_database.schema,
            rule_set=rule_set if rule_set is not None else standard_rules(),
            database=doc_database,
            options=OptimizerOptions(**options) if options else None)

    def test_optimizes_simple_select(self, doc_database):
        plan = Project(("p",), Select(parse_expression("p.number == 1"), GET_P))
        result = self.optimizer(doc_database).optimize(plan)
        assert result.best_cost.cost > 0
        assert result.statistics.logical_plans_explored >= 1
        names = [type(node).__name__ for node in walk_physical(result.best_plan)]
        assert names[0] == "ProjectOp"

    def test_raises_without_implementation_rules(self, doc_database):
        empty = RuleSet("empty")
        with pytest.raises(OptimizerError):
            self.optimizer(doc_database, rule_set=empty).optimize(GET_P)

    def test_exploration_cap_sets_truncated_flag(self, doc_database):
        plan = Select(
            parse_expression("p.number == 1 AND p.number == 2 AND p.number == 3"),
            GET_P)
        optimizer = self.optimizer(doc_database, max_logical_plans=2)
        result = optimizer.optimize(plan)
        assert result.statistics.exploration_truncated
        assert result.statistics.logical_plans_explored <= 2

    def test_equi_join_gets_hash_join(self, doc_database):
        plan = Select(parse_expression("p.section.document == d"),
                      Join(Const(True), GET_P, GET_D))
        result = self.optimizer(doc_database).optimize(plan)
        assert any(isinstance(node, HashJoin)
                   for node in walk_physical(result.best_plan))

    def test_memo_shares_subplans(self, doc_database):
        plan = Project(("p",), Select(parse_expression("p.number == 1"), GET_P))
        result = self.optimizer(doc_database).optimize(plan)
        # fewer physical plans costed than (alternatives x nodes) because the
        # best-physical results for shared subtrees are memoized
        assert result.statistics.physical_plans_costed <= \
            result.statistics.logical_plans_explored * 15

    def test_trace_can_be_disabled(self, doc_database):
        plan = Select(parse_expression("p.number == 1"), GET_P)
        optimizer = self.optimizer(doc_database, enable_trace=False)
        result = optimizer.optimize(plan)
        assert len(result.trace) == 0

    def test_explain_mentions_cost_and_plans(self, doc_database):
        plan = Select(parse_expression("p.number == 1"), GET_P)
        result = self.optimizer(doc_database).optimize(plan)
        text = result.explain()
        assert "physical plan" in text
        assert "cost=" in text


class TestOptimizerGenerator:
    def test_generated_optimizer_includes_semantic_rules(self, doc_database,
                                                         doc_knowledge):
        generator = OptimizerGenerator(doc_database.schema, doc_knowledge)
        optimizer = generator.generate(database=doc_database)
        structural = generator.generate_without_semantics(database=doc_database)
        assert len(optimizer.rule_set) > len(structural.rule_set)
        assert any("E1" in name for name in optimizer.rule_set.rule_names())

    def test_exclude_tags_removes_rule_groups(self, doc_database, doc_knowledge):
        generator = OptimizerGenerator(doc_database.schema, doc_knowledge)
        without_e5 = generator.generate(
            database=doc_database, exclude_tags=("semantic:query-method",))
        assert not any("E5" in name for name in without_e5.rule_set.rule_names())
        assert any("E1" in name for name in without_e5.rule_set.rule_names())

    def test_generation_without_knowledge(self, doc_database):
        generator = OptimizerGenerator(doc_database.schema,
                                       SchemaKnowledge(doc_database.schema))
        optimizer = generator.generate(database=doc_database)
        assert len(optimizer.rule_set) == len(standard_rules())

    def test_semantic_plan_uses_external_bulk_method(self, doc_database,
                                                     doc_knowledge):
        generator = OptimizerGenerator(doc_database.schema, doc_knowledge)
        optimizer = generator.generate(database=doc_database)
        plan = Project(("p",), Select(
            parse_expression("p->contains_string('Implementation')"), GET_P))
        result = optimizer.optimize(plan)
        nodes = list(walk_physical(result.best_plan))
        assert any(isinstance(node, (ExpressionSetScan, SetProbeFilter))
                   for node in nodes)
        assert not any(isinstance(node, Filter) for node in nodes)


class TestTraceAndStatistics:
    def test_trace_records_and_renders(self):
        trace = OptimizationTrace()
        trace.record_transformation("rule-a", "before", "after")
        trace.record_implementation("impl-b", "logical", "physical", detail="cost")
        trace.record_decision("original", "final")
        assert len(trace) == 3
        assert trace.rule_was_applied("rule-a")
        assert not trace.rule_was_applied("rule-z")
        assert len(trace.transformations()) == 1
        assert len(trace.implementations()) == 1
        rendered = trace.render()
        assert "rule-a" in rendered and "impl-b" in rendered

    def test_trace_render_with_limit(self):
        trace = OptimizationTrace()
        for index in range(10):
            trace.record_transformation(f"rule-{index}", "x", "y")
        rendered = trace.render(limit=3)
        assert "7 more events" in rendered

    def test_trace_respects_max_events(self):
        trace = OptimizationTrace(max_events=2)
        for index in range(5):
            trace.record_transformation(f"rule-{index}", "x", "y")
        assert len(trace) == 2

    def test_disabled_trace_records_nothing(self):
        trace = OptimizationTrace(enabled=False)
        trace.record_transformation("rule", "x", "y")
        assert len(trace) == 0

    def test_statistics_snapshot_and_rule_counts(self):
        statistics = OptimizerStatistics()
        statistics.record_rule("r1")
        statistics.record_rule("r1")
        statistics.logical_plans_explored = 5
        snapshot = statistics.snapshot()
        assert snapshot["logical_plans_explored"] == 5
        assert statistics.rule_application_counts["r1"] == 2
        assert "plans=5" in str(statistics)
