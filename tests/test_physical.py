"""Tests for the expression evaluator, the physical operators and the naive
lowering."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import Const, Var
from repro.algebra.operators import Get, Join, Map, Project, Select
from repro.datamodel.oid import OID
from repro.errors import AlgebraError, ExecutionError
from repro.physical.evaluator import evaluate, evaluate_predicate, make_hashable
from repro.physical.executor import execute_plan
from repro.physical.naive import naive_implementation
from repro.physical.plans import (
    ClassScan,
    DiffOp,
    ExpressionSetScan,
    Filter,
    FlattenEval,
    HashJoin,
    MapEval,
    NaturalMergeJoin,
    NestedLoopJoin,
    ProjectOp,
    SetProbeFilter,
    UnionOp,
    walk_physical,
)
from repro.vql.parser import parse_expression
from repro.workloads import TARGET_TITLE


class TestEvaluator:
    def test_constants_and_variables(self, doc_database):
        assert evaluate(Const(5), {}, doc_database) == 5
        assert evaluate(Var("x"), {"x": 7}, doc_database) == 7
        with pytest.raises(ExecutionError):
            evaluate(Var("missing"), {}, doc_database)

    def test_property_access_on_object(self, doc_database):
        paragraph = doc_database.extension("Paragraph")[0]
        row = {"p": paragraph}
        assert evaluate(parse_expression("p.number"), row, doc_database) == \
            doc_database.value(paragraph, "number")

    def test_property_access_lifted_over_set(self, doc_database):
        document = doc_database.extension("Document")[0]
        row = {"d": document}
        sections = evaluate(parse_expression("d.sections"), row, doc_database)
        paragraphs = evaluate(parse_expression("d.sections.paragraphs"),
                              row, doc_database)
        assert len(paragraphs) == 5 * len(sections)

    def test_property_access_on_none_is_none(self, doc_database):
        assert evaluate(parse_expression("x.title"), {"x": None}, doc_database) is None

    def test_property_access_on_scalar_raises(self, doc_database):
        with pytest.raises(ExecutionError):
            evaluate(parse_expression("x.title"), {"x": 42}, doc_database)

    def test_method_call(self, doc_database):
        paragraph = doc_database.extension("Paragraph")[0]
        document = evaluate(parse_expression("p->document()"),
                            {"p": paragraph}, doc_database)
        assert document.class_name == "Document"

    def test_method_call_lifted_over_set(self, doc_database):
        document = doc_database.extension("Document")[0]
        paragraphs = doc_database.invoke(document, "paragraphs")
        documents = evaluate(parse_expression("p->document()"),
                             {"p": paragraphs}, doc_database)
        assert documents == {document}

    def test_class_method_call(self, doc_database):
        from repro.vql.analyzer import resolve_class_references
        expr = resolve_class_references(
            parse_expression(f"Document->select_by_index('{TARGET_TITLE}')"),
            doc_database.schema, set())
        result = evaluate(expr, {}, doc_database)
        assert len(result) == 1

    def test_class_extent(self, doc_database):
        from repro.algebra.expressions import ClassExtent
        extent = evaluate(ClassExtent("Document"), {}, doc_database)
        assert len(extent) == doc_database.extension_size("Document")

    @pytest.mark.parametrize("text,row,expected", [
        ("1 + 2 * 3", {}, 7),
        ("10 / 4", {}, 2.5),
        ("x - 1", {"x": 3}, 2),
        ("-x", {"x": 3}, -3),
        ("1 == 1", {}, True),
        ("1 != 1", {}, False),
        ("2 < 3", {}, True),
        ("3 <= 3", {}, True),
        ("4 > 5", {}, False),
        ("'a' == 'a'", {}, True),
        ("TRUE AND FALSE", {}, False),
        ("TRUE OR FALSE", {}, True),
        ("NOT TRUE", {}, False),
    ])
    def test_scalar_operations(self, doc_database, text, row, expected):
        assert evaluate(parse_expression(text), row, doc_database) == expected

    def test_comparison_with_none_is_false(self, doc_database):
        assert evaluate(parse_expression("x < 3"), {"x": None}, doc_database) is False

    def test_is_in_membership(self, doc_database):
        assert evaluate(parse_expression("x IS-IN s"),
                        {"x": 1, "s": {1, 2}}, doc_database)
        assert not evaluate(parse_expression("x IS-IN s"),
                            {"x": 5, "s": {1, 2}}, doc_database)
        assert not evaluate(parse_expression("x IS-IN s"),
                            {"x": 5, "s": None}, doc_database)

    def test_is_in_on_non_collection_raises(self, doc_database):
        with pytest.raises(ExecutionError):
            evaluate(parse_expression("x IS-IN s"), {"x": 1, "s": 3}, doc_database)

    def test_is_subset(self, doc_database):
        assert evaluate(parse_expression("a IS-SUBSET b"),
                        {"a": {1}, "b": {1, 2}}, doc_database)
        assert not evaluate(parse_expression("a IS-SUBSET b"),
                            {"a": {3}, "b": {1, 2}}, doc_database)

    def test_set_operators(self, doc_database):
        row = {"a": {1, 2, 3}, "b": {2, 3, 4}}
        assert evaluate(parse_expression("a INTERSECTION b"), row, doc_database) == {2, 3}
        assert evaluate(parse_expression("a UNION b"), row, doc_database) == {1, 2, 3, 4}
        assert evaluate(parse_expression("a DIFFERENCE b"), row, doc_database) == {1}

    def test_tuple_and_set_constructors(self, doc_database):
        value = evaluate(parse_expression("[a: 1, b: x]"), {"x": 2}, doc_database)
        assert value == {"a": 1, "b": 2}
        assert evaluate(parse_expression("{1, 2}"), {}, doc_database) == {1, 2}

    def test_predicate_treats_none_as_false(self, doc_database):
        assert evaluate_predicate(Var("x"), {"x": None}, doc_database) is False

    def test_short_circuit_and(self, doc_database):
        # the right operand would fail if evaluated
        expr = parse_expression("FALSE AND missing.title == 'x'")
        assert evaluate_predicate(expr, {}, doc_database) is False

    def test_make_hashable(self):
        assert make_hashable({"b": [1, {2}], "a": 1}) == \
            (("a", 1), ("b", (1, frozenset({2}))))
        assert isinstance(make_hashable({1, 2}), frozenset)


class TestPhysicalOperators:
    def test_class_scan(self, doc_database):
        rows = execute_plan(ClassScan("p", "Paragraph"), doc_database)
        assert len(rows) == doc_database.extension_size("Paragraph")
        assert all(isinstance(row["p"], OID) for row in rows)

    def test_expression_set_scan(self, doc_database):
        from repro.vql.analyzer import resolve_class_references
        expr = resolve_class_references(
            parse_expression("Paragraph->retrieve_by_string('Implementation')"),
            doc_database.schema, set())
        rows = execute_plan(ExpressionSetScan("p", expr), doc_database)
        assert rows
        assert all(row["p"].class_name == "Paragraph" for row in rows)

    def test_expression_set_scan_requires_reference_free(self):
        with pytest.raises(AlgebraError):
            ExpressionSetScan("p", parse_expression("d.sections"))

    def test_filter(self, doc_database):
        plan = Filter(parse_expression("p.number == 1"), ClassScan("p", "Paragraph"))
        rows = execute_plan(plan, doc_database)
        assert all(doc_database.value(row["p"], "number") == 1 for row in rows)
        assert len(rows) == doc_database.extension_size("Section")

    def test_set_probe_filter(self, doc_database):
        from repro.vql.analyzer import resolve_class_references
        expr = resolve_class_references(
            parse_expression("Paragraph->retrieve_by_string('Implementation')"),
            doc_database.schema, set())
        probe = SetProbeFilter("p", expr, ClassScan("p", "Paragraph"))
        filtered = execute_plan(probe, doc_database)
        direct = execute_plan(ExpressionSetScan("p", expr), doc_database)
        assert {row["p"] for row in filtered} == {row["p"] for row in direct}

    def test_set_probe_filter_validates_ref(self):
        with pytest.raises(AlgebraError):
            SetProbeFilter("q", Const((1, 2)), ClassScan("p", "Paragraph"))

    def test_nested_loop_join_and_hash_join_agree(self, doc_database):
        nl = NestedLoopJoin(
            parse_expression("p.section == s"),
            ClassScan("p", "Paragraph"), ClassScan("s", "Section"))
        hj = HashJoin(parse_expression("p.section"), parse_expression("s"),
                      ClassScan("p", "Paragraph"), ClassScan("s", "Section"))
        nl_rows = execute_plan(nl, doc_database)
        hj_rows = execute_plan(hj, doc_database)
        key = lambda row: (row["p"], row["s"])
        assert sorted(map(key, nl_rows)) == sorted(map(key, hj_rows))
        assert len(nl_rows) == doc_database.extension_size("Paragraph")

    def test_natural_merge_join(self, doc_database):
        left = Filter(parse_expression("p.number == 1"), ClassScan("p", "Paragraph"))
        right = Filter(parse_expression("p.number == 1"), ClassScan("p", "Paragraph"))
        rows = execute_plan(NaturalMergeJoin(left, right), doc_database)
        assert len(rows) == doc_database.extension_size("Section")

    def test_natural_merge_join_without_common_refs_is_product(self, doc_database):
        rows = execute_plan(
            NaturalMergeJoin(ClassScan("d", "Document"), ClassScan("s", "Section")),
            doc_database)
        assert len(rows) == (doc_database.extension_size("Document")
                             * doc_database.extension_size("Section"))

    def test_map_eval_and_project(self, doc_database):
        plan = ProjectOp(("t",), MapEval("t", parse_expression("d.title"),
                                         ClassScan("d", "Document")))
        rows = execute_plan(plan, doc_database)
        titles = {row["t"] for row in rows}
        assert TARGET_TITLE in titles

    def test_flatten_eval(self, doc_database):
        plan = FlattenEval("s", parse_expression("d.sections"),
                           ClassScan("d", "Document"))
        rows = execute_plan(plan, doc_database)
        assert len(rows) == doc_database.extension_size("Section")
        assert all("d" in row and "s" in row for row in rows)

    def test_flatten_eval_scalar_value_is_singleton(self, doc_database):
        plan = FlattenEval("doc", parse_expression("s.document"),
                           ClassScan("s", "Section"))
        rows = execute_plan(plan, doc_database)
        assert len(rows) == doc_database.extension_size("Section")

    def test_project_deduplicates(self, doc_database):
        plan = ProjectOp(("n",), MapEval("n", parse_expression("p.number"),
                                         ClassScan("p", "Paragraph")))
        rows = execute_plan(plan, doc_database)
        assert len(rows) == 5  # paragraph numbers are 1..5

    def test_union_and_diff(self, doc_database):
        ones = Filter(parse_expression("p.number == 1"), ClassScan("p", "Paragraph"))
        twos = Filter(parse_expression("p.number == 2"), ClassScan("p", "Paragraph"))
        all_paragraphs = ClassScan("p", "Paragraph")
        union_rows = execute_plan(UnionOp(ones, twos), doc_database)
        assert len(union_rows) == 2 * doc_database.extension_size("Section")
        diff_rows = execute_plan(DiffOp(all_paragraphs, ones), doc_database)
        assert len(diff_rows) == (doc_database.extension_size("Paragraph")
                                  - doc_database.extension_size("Section"))

    def test_union_is_idempotent(self, doc_database):
        ones = Filter(parse_expression("p.number == 1"), ClassScan("p", "Paragraph"))
        rows = execute_plan(UnionOp(ones, ones), doc_database)
        assert len(rows) == doc_database.extension_size("Section")

    def test_walk_physical(self):
        plan = ProjectOp(("p",), Filter(Const(True), ClassScan("p", "Paragraph")))
        assert [type(node).__name__ for node in walk_physical(plan)] == \
            ["ProjectOp", "Filter", "ClassScan"]


class TestNaiveLowering:
    def test_each_logical_operator_maps_to_its_default(self, doc_schema):
        logical = Project(("p",), Select(
            parse_expression("p.number == 1"),
            Join(Const(True), Get("p", "Paragraph"), Get("d", "Document"))))
        physical = naive_implementation(logical)
        names = [type(node).__name__ for node in walk_physical(physical)]
        assert names == ["ProjectOp", "Filter", "NestedLoopJoin",
                         "ClassScan", "ClassScan"]

    def test_map_and_flat_lowering(self, doc_schema):
        logical = Map("t", parse_expression("d.title"), Get("d", "Document"))
        assert isinstance(naive_implementation(logical), MapEval)

    def test_naive_execution_matches_optimized(self, doc_session):
        query = ("ACCESS p FROM p IN Paragraph "
                 "WHERE (p->document()).title == 'Query Optimization'")
        naive = doc_session.execute_naive(query)
        optimized = doc_session.execute(query)
        assert naive.value_set() == optimized.value_set()
