"""Tests for the session facade, the engine helpers and the workload
generators (document and university schemas)."""

from __future__ import annotations

import pytest

from repro import open_session, run_query
from repro.errors import WorkloadError
from repro.workloads import (
    DocumentWorkloadConfig,
    QUERY_TERM,
    TARGET_TITLE,
    document_workload,
    generate_document_database,
)
from repro.workloads.university import generate_university_database


class TestSession:
    def test_parse_analyze_translate_pipeline(self, doc_session):
        query = "ACCESS p FROM p IN Paragraph WHERE p.number == 1"
        parsed = doc_session.parse(query)
        assert doc_session.parse(parsed) is parsed  # idempotent on Query objects
        analyzed = doc_session.analyze(query)
        assert analyzed.variable_class("p") == "Paragraph"
        translation = doc_session.translate(query)
        assert translation.output_ref == "p"

    def test_execute_returns_rows_and_values(self, doc_session):
        result = doc_session.execute(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1")
        assert len(result) == len(result.values)
        assert all(value.class_name == "Paragraph" for value in result.values)
        assert result.optimization is not None
        assert result.work["total_cost_units"] >= 0

    def test_execute_naive_skips_optimization(self, doc_session):
        result = doc_session.execute_naive(
            "ACCESS p FROM p IN Paragraph WHERE p.number == 1")
        assert result.optimization is None

    @pytest.mark.parametrize("query", [q.text for q in document_workload()],
                             ids=[q.name for q in document_workload()])
    def test_optimized_equals_naive_for_whole_workload(self, doc_session, query):
        """Correctness of optimization: every workload query returns exactly
        the same result set optimized and unoptimized."""
        naive = doc_session.execute_naive(query)
        optimized = doc_session.execute(query)
        assert naive.value_set() == optimized.value_set()

    @pytest.mark.parametrize("query", [q.text for q in document_workload()],
                             ids=[q.name for q in document_workload()])
    def test_structural_optimizer_is_also_correct(self, structural_session, query):
        naive = structural_session.execute_naive(query)
        optimized = structural_session.execute(query)
        assert naive.value_set() == optimized.value_set()

    def test_explain_contains_plans_and_costs(self, doc_session):
        text = doc_session.explain(
            "ACCESS p FROM p IN Paragraph WHERE p->contains_string('x')")
        assert "canonical logical plan" in text
        assert "physical plan" in text
        assert "estimated cost" in text

    def test_trace_renders_events(self, doc_session):
        text = doc_session.trace(
            "ACCESS p FROM p IN Paragraph "
            "WHERE (p->document()).title == 'Query Optimization'", limit=10)
        assert "optimization trace" in text

    def test_engine_helpers(self, doc_database, doc_knowledge):
        session = open_session(doc_database, knowledge=doc_knowledge)
        assert session.execute("ACCESS d.title FROM d IN Document").values
        result = run_query(doc_database,
                           "ACCESS d.title FROM d IN Document",
                           knowledge=doc_knowledge)
        assert TARGET_TITLE in set(result.values)


class TestUniversitySession:
    def test_path_method_query(self, uni_session):
        naive = uni_session.execute_naive(
            "ACCESS s FROM s IN Student "
            "WHERE s->departmentName() == 'Department of Databases 0'")
        optimized = uni_session.execute(
            "ACCESS s FROM s IN Student "
            "WHERE s->departmentName() == 'Department of Databases 0'")
        assert naive.value_set() == optimized.value_set()
        assert len(optimized) == 20  # all students of that department

    def test_query_method_equivalence(self, uni_session):
        result = uni_session.execute(
            "ACCESS d FROM d IN Department "
            "WHERE d.name == 'Department of Databases 0'")
        assert len(result) == 1

    def test_honours_implication_consistency(self, uni_session):
        naive = uni_session.execute_naive(
            "ACCESS s FROM s IN Student WHERE s.gpa >= 3.5")
        optimized = uni_session.execute(
            "ACCESS s FROM s IN Student WHERE s.gpa >= 3.5")
        assert naive.value_set() == optimized.value_set()


class TestDocumentGenerator:
    def test_database_shape_matches_config(self):
        db = generate_document_database(n_documents=5, sections_per_document=3,
                                        paragraphs_per_section=4)
        assert db.extension_size("Document") == 5
        assert db.extension_size("Section") == 15
        assert db.extension_size("Paragraph") == 60

    def test_generation_is_deterministic(self):
        a = generate_document_database(n_documents=3, seed=11)
        b = generate_document_database(n_documents=3, seed=11)
        paragraphs_a = [a.value(p, "content") for p in a.extension("Paragraph")]
        paragraphs_b = [b.value(p, "content") for p in b.extension("Paragraph")]
        assert paragraphs_a == paragraphs_b

    def test_different_seeds_differ(self):
        a = generate_document_database(n_documents=3, seed=1)
        b = generate_document_database(n_documents=3, seed=2)
        assert [a.value(p, "content") for p in a.extension("Paragraph")] != \
            [b.value(p, "content") for p in b.extension("Paragraph")]

    def test_target_title_and_matches_guaranteed(self, doc_database):
        titles = [doc_database.value(d, "title")
                  for d in doc_database.extension("Document")]
        assert titles.count(TARGET_TITLE) == 1
        matches = doc_database.invoke_class_method(
            "Paragraph", "retrieve_by_string", QUERY_TERM)
        target = next(d for d in doc_database.extension("Document")
                      if doc_database.value(d, "title") == TARGET_TITLE)
        target_paragraphs = doc_database.invoke(target, "paragraphs")
        assert matches & target_paragraphs  # the motivating query is non-empty

    def test_query_term_fraction_is_respected(self):
        db = generate_document_database(n_documents=10, query_term_fraction=0.1,
                                        target_matches=0)
        matches = db.invoke_class_method("Paragraph", "retrieve_by_string",
                                         QUERY_TERM)
        assert len(matches) == pytest.approx(0.1 * db.extension_size("Paragraph"),
                                             abs=2)

    def test_inverse_links_are_consistent(self, doc_database):
        for section in doc_database.extension("Section"):
            document = doc_database.value(section, "document")
            assert section in doc_database.value(document, "sections")
        for paragraph in doc_database.extension("Paragraph"):
            section = doc_database.value(paragraph, "section")
            assert paragraph in doc_database.value(section, "paragraphs")

    def test_indexes_are_created(self, doc_database):
        assert doc_database.indexes.has("Document", "title")
        assert doc_database.text_index("Paragraph", "content") is not None

    def test_statistics_are_reset_after_generation(self):
        db = generate_document_database(n_documents=2)
        assert db.statistics.total_method_calls() == 0
        assert db.statistics.objects_created == 0

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            generate_document_database(n_documents=0)
        with pytest.raises(WorkloadError):
            generate_document_database(n_documents=2, query_term_fraction=2.0)
        with pytest.raises(WorkloadError):
            generate_document_database(n_documents=2, target_title_documents=5)

    def test_config_overrides(self):
        config = DocumentWorkloadConfig(n_documents=3)
        db = generate_document_database(config, sections_per_document=2)
        assert db.extension_size("Section") == 6


class TestUniversityGenerator:
    def test_shape(self, uni_database):
        assert uni_database.extension_size("Department") == 4
        assert uni_database.extension_size("Student") == 80

    def test_inverse_links_consistent(self, uni_database):
        for student in uni_database.extension("Student"):
            department = uni_database.value(student, "department")
            assert student in uni_database.value(department, "students")

    def test_honours_precomputation_consistent(self, uni_database):
        for department in uni_database.extension("Department"):
            honours = uni_database.value(department, "honoursStudents")
            for student in uni_database.value(department, "students"):
                assert (student in honours) == \
                    (uni_database.value(student, "gpa") >= 3.5)

    def test_course_participants_consistent(self, uni_database):
        for student in uni_database.extension("Student"):
            for course in uni_database.value(student, "courses"):
                assert student in uni_database.value(course, "participants")
