"""Tests for the VQL lexer, parser and semantic analyzer."""

from __future__ import annotations

import pytest

from repro.algebra.expressions import (
    BinaryOp,
    ClassExtent,
    ClassMethodCall,
    Const,
    MethodCall,
    PropertyAccess,
    TupleConstructor,
    UnaryOp,
    Var,
)
from repro.datamodel.types import ANY, BOOL, INT, STRING, ObjectType, SetType
from repro.errors import VQLAnalysisError, VQLSyntaxError
from repro.vql.analyzer import analyze_query, infer_expression_type
from repro.vql.lexer import tokenize
from repro.vql.parser import parse_expression, parse_query


class TestLexer:
    def test_keywords_and_identifiers(self):
        kinds = [(t.kind, t.text) for t in tokenize("ACCESS p FROM p IN Paragraph")]
        assert kinds[0] == ("KEYWORD", "ACCESS")
        assert kinds[1] == ("IDENT", "p")
        assert kinds[-1] == ("EOF", "")

    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("access p from p in Paragraph")
        assert tokens[0].is_keyword("ACCESS")

    def test_string_literals(self):
        tokens = tokenize("'hello world' \"double\"")
        assert tokens[0].kind == "STRING" and tokens[0].text == "hello world"
        assert tokens[1].text == "double"

    def test_unterminated_string_raises(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].text == "42"
        assert tokens[1].text == "3.5"

    def test_arrow_variants(self):
        ascii_arrow = tokenize("p->m()")
        typographic = tokenize("p→m()")
        assert [t.text for t in ascii_arrow] == [t.text for t in typographic]

    def test_is_in_and_is_subset(self):
        tokens = tokenize("a IS-IN b IS-SUBSET c")
        ops = [t.text for t in tokens if t.kind == "OP"]
        assert ops == ["IS-IN", "IS-SUBSET"]

    def test_comparison_operators(self):
        ops = [t.text for t in tokenize("== != <= >= < >") if t.kind == "OP"]
        assert ops == ["==", "!=", "<=", ">=", "<", ">"]

    def test_comments_are_skipped(self):
        tokens = tokenize("ACCESS /* comment */ p -- trailing\nFROM p IN C")
        assert [t.text for t in tokens if t.kind == "IDENT"] == ["p", "p", "C"]

    def test_unterminated_comment_raises(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("/* never closed")

    def test_illegal_character_raises_with_position(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            tokenize("a § b")
        assert excinfo.value.line == 1

    def test_line_and_column_tracking(self):
        tokens = tokenize("ACCESS p\nFROM p IN C")
        from_token = next(t for t in tokens if t.is_keyword("FROM"))
        assert from_token.line == 2
        assert from_token.column == 1

    def test_lexer_error_reports_line_column_and_caret(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            tokenize("ACCESS p\nFROM p § C")
        error = excinfo.value
        assert error.line == 2 and error.column == 8
        rendered = str(error)
        assert "(line 2, column 8)" in rendered
        # the caret snippet shows the offending source line with a marker
        # under the offending column
        assert "FROM p § C" in rendered
        lines = rendered.splitlines()
        caret_line = lines[-1]
        source_line = lines[-2]
        assert caret_line.strip() == "^"
        assert caret_line.index("^") == source_line.index("§")

    def test_unterminated_string_error_carries_caret(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            tokenize("ACCESS 'oops")
        rendered = str(excinfo.value)
        assert "(line 1, column 8)" in rendered
        # snippet lines carry a two-space prefix; the caret sits under
        # column 8 of the source line
        assert rendered.splitlines()[-1].index("^") == 2 + 7


class TestExpressionParser:
    def test_path_expression(self):
        expr = parse_expression("p.section.document")
        assert expr == PropertyAccess(PropertyAccess(Var("p"), "section"), "document")

    def test_method_call_with_arguments(self):
        expr = parse_expression("p->contains_string('x')")
        assert expr == MethodCall(Var("p"), "contains_string", (Const("x"),))

    def test_method_call_without_arguments(self):
        assert parse_expression("p->document()") == MethodCall(Var("p"), "document", ())

    def test_chained_postfix(self):
        expr = parse_expression("Document->select_by_index('t').sections")
        assert isinstance(expr, PropertyAccess)
        assert isinstance(expr.base, MethodCall)

    def test_comparison_and_boolean_precedence(self):
        expr = parse_expression("a == 1 AND b == 2 OR NOT c == 3")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert expr.left.op == "AND"
        assert isinstance(expr.right, UnaryOp) and expr.right.op == "NOT"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == BinaryOp("+", Const(1), BinaryOp("*", Const(2), Const(3)))

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus_folds_numeric_literals(self):
        assert parse_expression("-5") == Const(-5)
        assert parse_expression("-3.5") == Const(-3.5)
        assert parse_expression("-x") == UnaryOp("-", Var("x"))

    def test_is_in(self):
        expr = parse_expression("p IS-IN D.sections")
        assert expr.op == "IS-IN"

    def test_tuple_constructor(self):
        expr = parse_expression("[a: p.number, b: q.number]")
        assert isinstance(expr, TupleConstructor)
        assert [name for name, _ in expr.fields] == ["a", "b"]

    def test_set_constructor(self):
        expr = parse_expression("{1, 2, 3}")
        assert len(expr.elements) == 3

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == Const(True)
        assert parse_expression("FALSE") == Const(False)

    def test_set_operators(self):
        expr = parse_expression("a INTERSECTION b UNION c")
        assert expr.op == "UNION"
        assert expr.left.op == "INTERSECT"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse_expression("a == 1 garbage garbage")

    def test_missing_operand_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse_expression("a ==")


class TestQueryParser:
    def test_single_range_query(self):
        query = parse_query("ACCESS p FROM p IN Paragraph WHERE p.number == 1")
        assert query.range_variables == ("p",)
        assert query.where is not None

    def test_query_without_where(self):
        query = parse_query("ACCESS d.title FROM d IN Document")
        assert query.where is None
        assert isinstance(query.access, PropertyAccess)

    def test_multiple_ranges(self):
        query = parse_query(
            "ACCESS p FROM p IN Paragraph, q IN Paragraph WHERE p->sameDocument(q)")
        assert query.range_variables == ("p", "q")

    def test_dependent_range(self):
        query = parse_query(
            "ACCESS d.title FROM d IN Document, p IN d->paragraphs()")
        assert query.ranges[1].depends_on() == {"d"}

    def test_missing_from_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse_query("ACCESS p WHERE p.number == 1")

    def test_str_round_trip_parses_again(self):
        text = "ACCESS p FROM p IN Paragraph WHERE p.number == 1"
        assert parse_query(str(parse_query(text))) == parse_query(text)

    def test_parser_error_reports_line_column_and_caret(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            parse_query("ACCESS p\nFORM p IN Paragraph")
        error = excinfo.value
        assert error.line == 2 and error.column == 1
        rendered = str(error)
        assert "(line 2, column 2)" in rendered or \
            "(line 2, column 1)" in rendered
        lines = rendered.splitlines()
        assert lines[-2].endswith("FORM p IN Paragraph")
        assert lines[-1].strip() == "^"

    def test_parser_error_caret_points_at_offending_token(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            parse_query("ACCESS p FROM p IN Paragraph WHERE p.number ==")
        rendered = str(excinfo.value)
        # the error is at end-of-input: the caret sits one past the text
        assert "expected expression" in rendered
        # two-space snippet prefix + one-past-the-end caret column
        assert rendered.splitlines()[-1].index("^") == 2 + len(
            "ACCESS p FROM p IN Paragraph WHERE p.number ==")


class TestAnalyzer:
    def test_class_range_resolution(self, doc_schema):
        analyzed = analyze_query(
            parse_query("ACCESS p FROM p IN Paragraph"), doc_schema)
        assert analyzed.query.ranges[0].source == ClassExtent("Paragraph")
        assert analyzed.variable_types["p"] == ObjectType("Paragraph")
        assert analyzed.variable_class("p") == "Paragraph"

    def test_class_method_call_resolution(self, doc_schema):
        analyzed = analyze_query(parse_query(
            "ACCESS p FROM p IN Paragraph "
            "WHERE p IS-IN Document->select_by_index('t').sections.paragraphs"),
            doc_schema)
        where = analyzed.query.where
        # the receiver has been rewritten into a ClassMethodCall
        assert any(isinstance(node, ClassMethodCall)
                   for node in _walk(where))

    def test_dependent_range_element_type(self, doc_schema):
        analyzed = analyze_query(parse_query(
            "ACCESS d.title FROM d IN Document, p IN d->paragraphs()"), doc_schema)
        assert analyzed.variable_types["p"] == ObjectType("Paragraph")

    def test_unknown_class_rejected(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query("ACCESS x FROM x IN Nonexistent"), doc_schema)

    def test_unknown_property_rejected(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query(
                "ACCESS p FROM p IN Paragraph WHERE p.nonexistent == 1"), doc_schema)

    def test_unknown_method_rejected(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query(
                "ACCESS p FROM p IN Paragraph WHERE p->fly()"), doc_schema)

    def test_method_arity_checked(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query(
                "ACCESS p FROM p IN Paragraph WHERE p->contains_string()"), doc_schema)

    def test_duplicate_range_variable_rejected(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query(
                "ACCESS p FROM p IN Paragraph, p IN Section"), doc_schema)

    def test_unbound_variable_in_range_source_rejected(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query(
                "ACCESS p FROM p IN d->paragraphs()"), doc_schema)

    def test_non_set_range_source_rejected(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            analyze_query(parse_query(
                "ACCESS s FROM d IN Document, s IN d.title"), doc_schema)

    def test_parameters_prebind_free_variables(self, doc_schema):
        analyzed = analyze_query(
            parse_query("ACCESS p FROM p IN Paragraph WHERE p.number == n"),
            doc_schema, parameters={"n": INT})
        assert analyzed.query.where is not None


class TestTypeInference:
    def env(self, doc_schema):
        return {"p": ObjectType("Paragraph"), "d": ObjectType("Document")}

    def test_property_type(self, doc_schema):
        expr = parse_expression("p.number")
        assert infer_expression_type(expr, self.env(doc_schema), doc_schema) == INT

    def test_path_type(self, doc_schema):
        expr = parse_expression("p.section.document")
        inferred = infer_expression_type(expr, self.env(doc_schema), doc_schema)
        assert inferred == ObjectType("Document")

    def test_lifted_property_over_set(self, doc_schema):
        expr = parse_expression("d.sections.paragraphs")
        inferred = infer_expression_type(expr, self.env(doc_schema), doc_schema)
        assert inferred == SetType(ObjectType("Paragraph"))

    def test_method_return_type(self, doc_schema):
        expr = parse_expression("p->document()")
        assert infer_expression_type(
            expr, self.env(doc_schema), doc_schema) == ObjectType("Document")

    def test_comparison_is_bool(self, doc_schema):
        expr = parse_expression("p.number == 3")
        assert infer_expression_type(expr, self.env(doc_schema), doc_schema) == BOOL

    def test_arithmetic_types(self, doc_schema):
        assert infer_expression_type(parse_expression("1 + 2"), {}, doc_schema) == INT
        assert infer_expression_type(parse_expression("1 / 2"), {}, doc_schema).name == "REAL"

    def test_unknown_variable_raises(self, doc_schema):
        with pytest.raises(VQLAnalysisError):
            infer_expression_type(parse_expression("zz.number"), {}, doc_schema)

    def test_any_typed_receiver_is_tolerated(self, doc_schema):
        inferred = infer_expression_type(
            parse_expression("x.anything"), {"x": ANY}, doc_schema)
        assert inferred == ANY


def _walk(expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)
