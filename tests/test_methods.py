"""Tests for the method-implementation factories against the document schema."""

from __future__ import annotations

import pytest

from repro.datamodel.methods import (
    collect_over_property,
    index_lookup_method,
    path_method,
    same_path_target_method,
    text_contains_method,
    text_retrieve_method,
)
from repro.errors import MethodInvocationError
from repro.workloads import TARGET_TITLE


@pytest.fixture(scope="module")
def db(request):
    from repro.workloads import generate_document_database
    return generate_document_database(n_documents=4)


def first(db, class_name):
    return db.extension(class_name)[0]


class TestPathMethod:
    def test_document_follows_section_document(self, db):
        paragraph = first(db, "Paragraph")
        expected = db.value(db.value(paragraph, "section"), "document")
        assert db.invoke(paragraph, "document") == expected

    def test_path_method_returns_none_on_missing_link(self, db):
        # build a dangling paragraph: section is None
        orphan = db.create("Paragraph", number=99, section=None, content="x")
        assert db.invoke(orphan, "document") is None

    def test_factory_direct_invocation(self, db):
        impl = path_method("section")
        paragraph = first(db, "Paragraph")
        assert impl(db.context, paragraph) == db.value(paragraph, "section")


class TestCollectOverProperty:
    def test_document_paragraphs_collects_all_sections(self, db):
        document = first(db, "Document")
        collected = db.invoke(document, "paragraphs")
        expected = set()
        for section in db.value(document, "sections"):
            expected |= db.value(section, "paragraphs")
        assert collected == expected
        assert len(collected) == 20  # 4 sections x 5 paragraphs

    def test_collect_over_missing_property_value(self, db):
        empty_doc = db.create("Document", title="empty", sections=set(),
                              largeParagraphs=set())
        assert db.invoke(empty_doc, "paragraphs") == set()

    def test_collect_handles_single_valued_intermediate(self, db):
        impl = collect_over_property("section", "paragraphs")
        paragraph = first(db, "Paragraph")
        result = impl(db.context, paragraph)
        assert paragraph in result


class TestIndexLookupMethod:
    def test_select_by_index_finds_target_title(self, db):
        result = db.invoke_class_method("Document", "select_by_index", TARGET_TITLE)
        assert len(result) == 1
        (document,) = result
        assert db.value(document, "title") == TARGET_TITLE

    def test_select_by_index_misses(self, db):
        assert db.invoke_class_method("Document", "select_by_index", "no such") == set()

    def test_missing_index_raises(self, db):
        impl = index_lookup_method("Section", "title")
        with pytest.raises(MethodInvocationError):
            impl(db.context, "Section", "anything")


class TestTextMethods:
    def test_contains_string_agrees_with_content(self, db):
        for paragraph in db.extension("Paragraph")[:20]:
            content = db.value(paragraph, "content")
            assert db.invoke(paragraph, "contains_string", "Implementation") == \
                ("implementation" in content.lower())

    def test_retrieve_by_string_equals_scan(self, db):
        retrieved = db.invoke_class_method("Paragraph", "retrieve_by_string",
                                           "Implementation")
        scanned = {p for p in db.extension("Paragraph")
                   if "implementation" in db.value(p, "content").lower()}
        assert retrieved == scanned
        assert retrieved  # the generator guarantees matches

    def test_contains_string_without_engine_falls_back_to_property(self, db):
        impl = text_contains_method("Section", "title")
        section = first(db, "Section")
        title = db.value(section, "title")
        assert impl(db.context, section, title.split()[0])
        assert not impl(db.context, section, "definitely-not-present")

    def test_retrieve_without_engine_raises(self, db):
        impl = text_retrieve_method("Section", "title")
        with pytest.raises(MethodInvocationError):
            impl(db.context, "Section", "x")


class TestSameDocument:
    def test_same_document_true_within_document(self, db):
        document = first(db, "Document")
        paragraphs = sorted(db.invoke(document, "paragraphs"))
        assert db.invoke(paragraphs[0], "sameDocument", paragraphs[1])

    def test_same_document_false_across_documents(self, db):
        documents = db.extension("Document")
        p1 = sorted(db.invoke(documents[0], "paragraphs"))[0]
        p2 = sorted(db.invoke(documents[1], "paragraphs"))[0]
        assert not db.invoke(p1, "sameDocument", p2)

    def test_factory_uses_named_method(self, db):
        impl = same_path_target_method("document")
        document = first(db, "Document")
        paragraphs = sorted(db.invoke(document, "paragraphs"))
        assert impl(db.context, paragraphs[0], paragraphs[1])


class TestWordCount:
    def test_word_count_matches_split(self, db):
        paragraph = first(db, "Paragraph")
        content = db.value(paragraph, "content")
        assert db.invoke(paragraph, "wordCount") == len(content.split())

    def test_large_paragraphs_property_is_consistent(self, db):
        threshold = 40
        for document in db.extension("Document"):
            large = db.value(document, "largeParagraphs")
            for paragraph in db.invoke(document, "paragraphs"):
                expected = db.invoke(paragraph, "wordCount") > threshold
                assert (paragraph in large) == expected
