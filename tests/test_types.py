"""Tests for the VML type system and object identifiers."""

from __future__ import annotations

import pytest

from repro.datamodel.oid import OID, OIDAllocator
from repro.datamodel.types import (
    ANY,
    BOOL,
    INT,
    OID_TYPE,
    REAL,
    STRING,
    ArrayType,
    DictionaryType,
    ObjectType,
    SetType,
    TupleType,
    array_of,
    dictionary_of,
    infer_type,
    object_type,
    set_of,
    tuple_of,
)
from repro.errors import TypeMismatchError


class TestPrimitiveTypes:
    @pytest.mark.parametrize("vml_type,value", [
        (STRING, "hello"),
        (STRING, ""),
        (INT, 0),
        (INT, -17),
        (REAL, 3.5),
        (REAL, 2),            # INT values are acceptable REALs
        (BOOL, True),
        (BOOL, False),
    ])
    def test_validate_accepts_conforming_values(self, vml_type, value):
        assert vml_type.validate(value)

    @pytest.mark.parametrize("vml_type,value", [
        (STRING, 17),
        (INT, "17"),
        (INT, 3.5),
        (INT, True),           # booleans are not INTs
        (REAL, "3.5"),
        (BOOL, 1),
        (BOOL, "true"),
    ])
    def test_validate_rejects_nonconforming_values(self, vml_type, value):
        assert not vml_type.validate(value)

    def test_check_raises_on_mismatch(self):
        with pytest.raises(TypeMismatchError):
            INT.check("not an int", context="test value")

    def test_check_passes_on_match(self):
        INT.check(42)  # must not raise

    def test_str_representation(self):
        assert str(STRING) == "STRING"
        assert str(INT) == "INT"

    def test_primitive_equality_and_hash(self):
        assert STRING == STRING
        assert STRING != INT
        assert hash(STRING) == hash(STRING)


class TestObjectType:
    def test_accepts_oids(self):
        assert object_type("Document").validate(OID("Document", 1))

    def test_accepts_none(self):
        assert object_type("Document").validate(None)

    def test_rejects_non_oids(self):
        assert not object_type("Document").validate("Document:1")

    def test_untyped_oid(self):
        assert OID_TYPE.validate(OID("Anything", 3))

    def test_str(self):
        assert str(object_type("Document")) == "Document"
        assert str(OID_TYPE) == "OID"


class TestBulkTypes:
    def test_set_type_validates_elements(self):
        t = set_of(INT)
        assert t.validate({1, 2, 3})
        assert t.validate([1, 2])
        assert not t.validate({1, "two"})
        assert not t.validate(3)

    def test_set_type_element_type(self):
        assert set_of(INT).element_type() == INT
        assert set_of(INT).is_set()

    def test_array_type(self):
        t = array_of(STRING)
        assert t.validate(["a", "b"])
        assert not t.validate({"a"})
        assert t.element_type() == STRING

    def test_tuple_type_validates_components(self):
        t = tuple_of(name=STRING, age=INT)
        assert t.validate({"name": "x", "age": 3})
        assert not t.validate({"name": "x"})
        assert not t.validate({"name": "x", "age": "3"})
        assert not t.validate("not a mapping")

    def test_tuple_type_component_order_irrelevant(self):
        a = TupleType((("a", INT), ("b", STRING)))
        b = TupleType((("b", STRING), ("a", INT)))
        assert a == b
        assert hash(a) == hash(b)

    def test_dictionary_type(self):
        t = dictionary_of(STRING, INT)
        assert t.validate({"a": 1})
        assert not t.validate({"a": "1"})
        assert not t.validate({1: 1})

    def test_element_type_on_non_bulk_raises(self):
        with pytest.raises(TypeMismatchError):
            INT.element_type()

    def test_str_representations(self):
        assert str(set_of(INT)) == "{INT}"
        assert str(array_of(INT)) == "ARRAY[INT]"
        assert "TUPLE[" in str(tuple_of(a=INT))
        assert str(dictionary_of(STRING, INT)) == "DICTIONARY[STRING, INT]"


class TestAnyTypeAndCompatibility:
    def test_any_accepts_everything(self):
        assert ANY.validate(object())
        assert ANY.validate(None)

    def test_compatibility_with_any(self):
        assert ANY.compatible_with(INT)
        assert INT.compatible_with(ANY)

    def test_compatibility_same_type(self):
        assert INT.compatible_with(INT)
        assert not INT.compatible_with(STRING)


class TestInferType:
    @pytest.mark.parametrize("value,expected", [
        (True, BOOL),
        (7, INT),
        (7.5, REAL),
        ("x", STRING),
        (OID("Document", 1), ObjectType("Document")),
    ])
    def test_scalars(self, value, expected):
        assert infer_type(value) == expected

    def test_homogeneous_set(self):
        assert infer_type({1, 2}) == SetType(INT)

    def test_heterogeneous_set_falls_back_to_any(self):
        assert infer_type({1, "x"}) == SetType(ANY)

    def test_list_infers_array(self):
        assert infer_type([1, 2]) == ArrayType(INT)

    def test_mapping_infers_tuple(self):
        inferred = infer_type({"a": 1})
        assert isinstance(inferred, TupleType)
        assert inferred.component_map["a"] == INT

    def test_unknown_object_is_any(self):
        assert infer_type(object()) == ANY


class TestOID:
    def test_equality_and_hash(self):
        assert OID("Document", 1) == OID("Document", 1)
        assert OID("Document", 1) != OID("Document", 2)
        assert OID("Document", 1) != OID("Section", 1)
        assert len({OID("Document", 1), OID("Document", 1)}) == 1

    def test_ordering_is_total(self):
        oids = [OID("B", 2), OID("A", 5), OID("B", 1)]
        assert sorted(oids) == [OID("A", 5), OID("B", 1), OID("B", 2)]

    def test_str_and_repr(self):
        assert str(OID("Document", 3)) == "Document:3"
        assert "Document" in repr(OID("Document", 3))


class TestOIDAllocator:
    def test_serials_start_at_one_and_increase(self):
        allocator = OIDAllocator()
        first = allocator.allocate("Document")
        second = allocator.allocate("Document")
        assert (first.serial, second.serial) == (1, 2)

    def test_serials_are_per_class(self):
        allocator = OIDAllocator()
        allocator.allocate("Document")
        assert allocator.allocate("Section").serial == 1

    def test_allocate_many(self):
        allocator = OIDAllocator()
        oids = list(allocator.allocate_many("Paragraph", 5))
        assert [oid.serial for oid in oids] == [1, 2, 3, 4, 5]
        assert allocator.last_serial("Paragraph") == 5

    def test_reset(self):
        allocator = OIDAllocator()
        allocator.allocate("Document")
        allocator.reset()
        assert allocator.last_serial("Document") == 0
        assert allocator.allocate("Document").serial == 1
