"""Differential fuzzing: interpreter vs compiled vs parallel engines.

A seeded random VQL query generator produces selections, method calls,
joins and bind parameters over the document schema.  Every generated query
is executed by

* the reference **interpreter** on the naive physical plan (the oracle),
* the **compiled** pipelined engine on the naive, the optimized sequential
  and the optimized parallel (degree 4) plans,
* the **prepared** executable (the service's compile-once path) on the
  parallel plan, and
* all three engines on a *force-parallelized* lowering of the naive plan
  (every eligible operator replaced by its morsel-driven variant), so the
  parallel operators are exercised even when the cost model would not pick
  them,

and all results must be identical row multisets.  Seeds are fixed, so CI
runs the same ~200 cases every time; set ``REPRO_FUZZ_CASES`` to fuzz a
larger space locally.
"""

from __future__ import annotations

import os
import random
import re
from collections import Counter

import pytest

from repro.algebra.translate import translate_query
from repro.physical.evaluator import make_hashable
from repro.physical.executor import execute_plan
from repro.physical.interpreter import execute_plan_interpreted
from repro.physical.naive import naive_implementation
from repro.physical.plans import (
    ClassScan,
    Filter,
    HashJoin,
    MapEval,
    ParallelHashJoin,
    ParallelMap,
    ParallelScan,
    PhysicalOperator,
)
from repro.service.prepared import prepare_plan
from repro.session import Session
from repro.workloads import document_knowledge, generate_document_database

#: number of seeded cases run in CI (a case is one generated query)
N_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "200"))
#: degree used for parallel plans
DEGREE = 4

TERMS = ("word0003", "word0005", "word0010", "Implementation", "zzz-missing")
TITLES = ("Query Optimization", "Document 1", "no such title")
NUMBERS = (0, 1, 2, 3, 5, 8)


# ----------------------------------------------------------------------
# query generator
# ----------------------------------------------------------------------
class QueryGenerator:
    """Generates random (query text, parameters) pairs over the document
    schema.  Conditions draw from selections, method calls, joins and
    bind parameters; every generated query is valid VQL."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.parameters: dict[str, object] = {}

    # -- literals / parameters ------------------------------------------
    def _value(self, value) -> str:
        """Render *value* as a literal or, sometimes, as a bind parameter."""
        if self.rng.random() < 0.25:
            name = f"p{len(self.parameters)}"
            self.parameters[name] = value
            return f":{name}"
        if isinstance(value, str):
            return f"'{value}'"
        return str(value)

    def _term(self) -> str:
        return self._value(self.rng.choice(TERMS))

    def _number(self) -> str:
        return self._value(self.rng.choice(NUMBERS))

    # -- conditions ------------------------------------------------------
    def _paragraph_atoms(self, var: str) -> list[str]:
        return [
            f"{var}.number == {self._number()}",
            f"{var}.number < {self._number()}",
            f"{var}.number >= {self._number()}",
            f"{var}->wordCount() > {self._number()}",
            f"{var}->contains_string({self._term()})",
            f"({var}->document()).title == {self._value(self.rng.choice(TITLES))}",
            f"{var} IS-IN Paragraph->retrieve_by_string({self._term()})",
        ]

    def _document_atoms(self, var: str) -> list[str]:
        return [
            f"{var}.title == {self._value(self.rng.choice(TITLES))}",
            f"{var} IS-IN Document->select_by_index({self._value(self.rng.choice(TITLES))})",
        ]

    def _section_atoms(self, var: str) -> list[str]:
        return [
            f"{var}.number == {self._number()}",
            f"{var}.number < {self._number()}",
        ]

    def _atoms(self, var: str, class_name: str) -> list[str]:
        return {
            "Paragraph": self._paragraph_atoms,
            "Document": self._document_atoms,
            "Section": self._section_atoms,
        }[class_name](var)

    def _condition(self, variables: list[tuple[str, str]]) -> str:
        atoms: list[str] = []
        for var, class_name in variables:
            atoms.extend(self._atoms(var, class_name))
        paragraph_vars = [var for var, cls in variables if cls == "Paragraph"]
        if len(paragraph_vars) >= 2:
            first, second = paragraph_vars[:2]
            atoms.append(f"{first}->sameDocument({second})")
            atoms.append(f"{first}->document() == {second}->document()")
        picked = self.rng.sample(atoms, k=min(self.rng.randint(1, 3), len(atoms)))
        rendered = picked[0]
        for atom in picked[1:]:
            connective = self.rng.choice(("AND", "AND", "OR"))
            rendered = f"({rendered}) {connective} ({atom})"
        if self.rng.random() < 0.15:
            rendered = f"NOT ({rendered})"
        return rendered

    # -- whole queries ---------------------------------------------------
    def generate(self) -> tuple[str, dict[str, object]]:
        self.parameters = {}
        shape = self.rng.random()
        if shape < 0.55:
            variables = [("p", "Paragraph")]
        elif shape < 0.7:
            variables = [(self.rng.choice(("d", "s")),
                          self.rng.choice(("Document", "Section")))]
            variables = [(variables[0][0],
                          "Document" if variables[0][0] == "d" else "Section")]
        elif shape < 0.9:
            variables = [("p", "Paragraph"), ("q", "Paragraph")]
        else:
            variables = [("p", "Paragraph"), ("d", "Document")]

        condition = self._condition(variables)
        if len(variables) == 1:
            var = variables[0][0]
            access = self.rng.choice((var, f"{var}.number")
                                     if variables[0][1] != "Document"
                                     else (var, f"{var}.title"))
        else:
            fields = ", ".join(
                f"f{i}: {var}.number" if cls != "Document" else f"f{i}: {var}.title"
                for i, (var, cls) in enumerate(variables))
            access = f"[{fields}]"
        ranges = ", ".join(f"{var} IN {cls}" for var, cls in variables)
        text = f"ACCESS {access} FROM {ranges} WHERE {condition}"
        return text, self._used_parameters(text)

    def _used_parameters(self, text: str) -> dict[str, object]:
        # atoms are generated eagerly but only sampled into the text, so
        # keep just the parameters the final query actually references
        return {name: value for name, value in self.parameters.items()
                if re.search(rf":{name}\b", text)}

    # -- multi-way join queries ------------------------------------------
    #: 3–5-relation equi-join topologies over the document schema's
    #: reference properties (Paragraph.section → Section.document)
    MULTIJOIN_SHAPES = {
        "chain3": ([("p", "Paragraph"), ("s", "Section"), ("d", "Document")],
                   ["p.section == s", "s.document == d"]),
        "star3": ([("p", "Paragraph"), ("q", "Paragraph"), ("s", "Section")],
                  ["p.section == s", "q.section == s"]),
        "chain4": ([("p", "Paragraph"), ("q", "Paragraph"),
                    ("s", "Section"), ("d", "Document")],
                   ["p.section == s", "q.section == s", "s.document == d"]),
        "star5": ([("p", "Paragraph"), ("q", "Paragraph"), ("s", "Section"),
                   ("t", "Section"), ("d", "Document")],
                  ["p.section == s", "q.section == t",
                   "s.document == d", "t.document == d"]),
    }

    def generate_multijoin(self, shape: str = None
                           ) -> tuple[str, dict[str, object]]:
        """A 3–5-way join query: the shape's equi-join edges plus one or
        two random local predicates (property or method based, possibly
        parameterized) — the join-order enumerator's fuzz surface."""
        self.parameters = {}
        if shape is None:
            # the wide shapes are expensive under the naive-plan oracle,
            # so the sampler leans on the three-relation topologies
            shape = self.rng.choice(("chain3", "chain3", "star3", "star3",
                                     "chain4", "star5"))
        variables, joins = self.MULTIJOIN_SHAPES[shape]
        atoms: list[str] = []
        for var, class_name in variables:
            atoms.extend(self._atoms(var, class_name))
        picked = self.rng.sample(atoms, k=min(self.rng.randint(1, 2),
                                              len(atoms)))
        condition = " AND ".join(f"({part})" for part in joins + picked)
        fields = ", ".join(
            f"f{i}: {var}.title" if cls == "Document" else f"f{i}: {var}.number"
            for i, (var, cls) in enumerate(variables))
        ranges = ", ".join(f"{var} IN {cls}" for var, cls in variables)
        text = f"ACCESS [{fields}] FROM {ranges} WHERE {condition}"
        return text, self._used_parameters(text)


# ----------------------------------------------------------------------
# forced parallel lowering
# ----------------------------------------------------------------------
def force_parallel(plan: PhysicalOperator, degree: int = DEGREE
                   ) -> PhysicalOperator:
    """Replace every eligible operator by its morsel-driven variant."""
    children = tuple(force_parallel(child, degree) for child in plan.inputs())
    if isinstance(plan, Filter) and isinstance(plan.input, ClassScan) \
            and type(plan.input) is ClassScan:
        return ParallelScan(plan.input.ref, plan.input.class_name,
                            condition=plan.condition, degree=degree)
    if type(plan) is MapEval:
        return ParallelMap(plan.ref, plan.expression, children[0], degree)
    if type(plan) is HashJoin:
        return ParallelHashJoin(plan.left_key, plan.right_key,
                                children[0], children[1], degree)
    if children:
        return plan.with_inputs(children)
    return plan


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def multiset(rows):
    return Counter(make_hashable(row) for row in rows)


@pytest.fixture(scope="module")
def fuzz_db():
    return generate_document_database(n_documents=2)


@pytest.fixture(scope="module")
def sessions(fuzz_db):
    knowledge = document_knowledge(fuzz_db.schema)
    return {
        "sequential": Session(fuzz_db, knowledge=knowledge, parallelism=1),
        "parallel": Session(fuzz_db, knowledge=knowledge, parallelism=DEGREE),
    }


def run_one(text: str, parameters: dict, fuzz_db, sessions) -> int:
    """Run one generated query through every engine; return the row count."""
    sequential = sessions["sequential"]
    parallel = sessions["parallel"]

    # Oracle: naive plan, reference interpreter.  Parameters are substituted
    # before translation, exactly like Session.execute(parameters=...).
    bound = Session._bind(sequential.analyze(text), parameters or None)
    translation = translate_query(bound)
    naive_plan = naive_implementation(translation.plan)
    oracle = multiset(execute_plan_interpreted(naive_plan, fuzz_db))

    # Compiled engine on the same naive plan.
    assert multiset(execute_plan(naive_plan, fuzz_db)) == oracle, \
        f"compiled/naive diverges: {text!r}"

    # Optimized sequential plan (compiled engine via the session).
    seq_result = sequential.execute(text, parameters=parameters or None)
    assert multiset(seq_result.rows) == oracle, \
        f"optimized sequential diverges: {text!r}"

    # Optimized parallel plan: compiled + prepared + interpreter oracle.
    par_result = parallel.execute(text, parameters=parameters or None)
    assert multiset(par_result.rows) == oracle, \
        f"optimized parallel diverges: {text!r}"
    par_plan = par_result.physical_plan
    assert multiset(execute_plan_interpreted(par_plan, fuzz_db)) == oracle, \
        f"interpreter on parallel plan diverges: {text!r}"
    assert multiset(prepare_plan(par_plan, fuzz_db).run()) == oracle, \
        f"prepared parallel diverges: {text!r}"

    # Forced parallel lowering of the naive plan, all three engines.
    forced = force_parallel(naive_plan)
    assert multiset(execute_plan_interpreted(forced, fuzz_db)) == oracle, \
        f"interpreter/forced-parallel diverges: {text!r}"
    assert multiset(execute_plan(forced, fuzz_db)) == oracle, \
        f"compiled/forced-parallel diverges: {text!r}"
    assert multiset(prepare_plan(forced, fuzz_db).run()) == oracle, \
        f"prepared/forced-parallel diverges: {text!r}"
    return sum(oracle.values())


#: fixed seeds: each batch is deterministic, ~N_CASES//4 queries per batch
BATCH_SEEDS = (11, 23, 47, 89)


@pytest.mark.parametrize("seed", BATCH_SEEDS)
def test_fuzz_differential_batch(seed, fuzz_db, sessions):
    generator = QueryGenerator(random.Random(seed))
    cases = max(N_CASES // len(BATCH_SEEDS), 1)
    non_empty = 0
    for _ in range(cases):
        text, parameters = generator.generate()
        if run_one(text, parameters, fuzz_db, sessions) > 0:
            non_empty += 1
    # the generator must not degenerate into only-empty results
    assert non_empty >= cases // 10


def test_generator_is_deterministic():
    first = QueryGenerator(random.Random(7))
    second = QueryGenerator(random.Random(7))
    for _ in range(25):
        assert first.generate() == second.generate()
    for _ in range(10):
        assert first.generate_multijoin() == second.generate_multijoin()


# ----------------------------------------------------------------------
# multi-way joins: the join-order enumerator's differential surface
# ----------------------------------------------------------------------
MULTIJOIN_SEEDS = (13, 59)


@pytest.fixture(scope="module")
def multijoin_sessions(fuzz_db):
    """Sessions with a tight exploration cap: five-relation closures run
    to thousands of plans, and truncated exploration is itself a target —
    the seeded join order must stay differential when the closure stops
    early."""
    from repro.optimizer.search import OptimizerOptions

    knowledge = document_knowledge(fuzz_db.schema)
    options = OptimizerOptions(max_logical_plans=400, enable_trace=False)
    return {
        "sequential": Session(fuzz_db, knowledge=knowledge, options=options,
                              parallelism=1),
        "parallel": Session(fuzz_db, knowledge=knowledge, options=options,
                            parallelism=DEGREE),
    }


@pytest.mark.parametrize("seed", MULTIJOIN_SEEDS)
def test_fuzz_multijoin_differential_batch(seed, fuzz_db, multijoin_sessions):
    """3–5-way chain and star joins (mixed property/method predicates,
    bind parameters) stay multiset-identical across interpreter, compiled
    and prepared engines on naive, optimized and parallel plans — the
    enumerator may reorder the joins, never change the rows."""
    sessions = multijoin_sessions
    generator = QueryGenerator(random.Random(seed))
    shapes = ("chain3", "star3", "chain4", "star5",
              None, None)  # None → weighted random shape
    non_empty = 0
    for shape in shapes:
        text, parameters = generator.generate_multijoin(shape)
        if run_one(text, parameters, fuzz_db, sessions) > 0:
            non_empty += 1
    assert non_empty >= 2  # join edges must keep producing matches


def test_multijoin_feedback_drift_oracle():
    """Replanning after adaptive feedback never changes results: under
    drift, every service execution of a multi-join query must equal a
    from-scratch naive evaluation of the same query at that moment."""
    from repro.service.service import QueryService

    database = generate_document_database(n_documents=2)
    knowledge = document_knowledge(database.schema)
    service = QueryService(database, knowledge=knowledge,
                           feedback_threshold=3.0)  # eager corrections
    service.execute("ANALYZE")

    generator = QueryGenerator(random.Random(211))
    cases = [generator.generate_multijoin(shape)
             for shape in ("chain3", "star3", "chain4")]
    rng = random.Random(211)

    def reference(text, parameters):
        bound = Session._bind(
            Session(database, knowledge=knowledge).analyze(text),
            parameters or None)
        plan = naive_implementation(translate_query(bound).plan)
        return multiset(execute_plan_interpreted(plan, database))

    for round_number in range(3):
        for text, parameters in cases:
            for _ in range(2):  # spans profile → correct → replan
                result = service.execute(text, parameters or None)
                assert multiset(result.rows) == reference(text, parameters), \
                    f"feedback replan changed results: {text!r}"
        # drift: renumber a few paragraphs (stays below staleness)
        paragraphs = list(database.extension("Paragraph"))
        for oid in rng.sample(paragraphs, k=min(4, len(paragraphs))):
            database.update(oid, number=rng.choice(NUMBERS))


# ----------------------------------------------------------------------
# statistics-enabled differential + the EXPLAIN ANALYZE sanity oracle
# ----------------------------------------------------------------------
def test_fuzz_with_statistics_stays_identical_and_estimates_sane():
    """ANALYZE must never change results, and profiled executions must
    report internally consistent counters with sane (finite, non-negative)
    estimates; the root operator's actual rows must equal the result size.
    """
    import math

    from repro.physical.profile import PlanProfile, estimated_vs_actual

    database = generate_document_database(n_documents=2)
    knowledge = document_knowledge(database.schema)
    flat = Session(database, knowledge=knowledge, parallelism=1)
    baselines = {}
    generator = QueryGenerator(random.Random(101))
    cases = [generator.generate() for _ in range(40)]

    for text, parameters in cases:
        result = flat.execute(text, parameters=parameters or None)
        baselines[text] = multiset(result.rows)

    database.analyze()  # histograms + calibrated method costs from here on
    informed = Session(database, knowledge=knowledge, parallelism=1)

    non_trivial = 0
    for text, parameters in cases:
        bound = Session._bind(informed.analyze(text), parameters or None)
        translation = translate_query(bound)
        plan = informed.optimizer.optimize(translation.plan).best_plan
        profile = PlanProfile()
        rows = execute_plan(plan, database, profile=profile)
        assert multiset(rows) == baselines[text], \
            f"statistics changed the result of: {text!r}"

        records = estimated_vs_actual(plan, profile,
                                      informed.optimizer.cost_model)
        root = records[0]
        assert root["actual_rows"] == len(rows)
        for record in records:
            assert record["estimated_rows"] >= 0.0
            assert math.isfinite(record["estimated_rows"])
            assert record["actual_rows"] >= 0
            assert record["opens"] >= 1
            assert record["seconds"] >= 0.0
        if len(rows) > 0:
            non_trivial += 1
    assert non_trivial >= 4  # the corpus must not degenerate to empty results


# ----------------------------------------------------------------------
# mutation-interleaved fuzzing: INSERT/UPDATE/DELETE between queries
# ----------------------------------------------------------------------
MUTATION_SEEDS = (5, 17, 31)
#: words inserted paragraphs draw their content from (short on purpose:
#: the wordCount/largeParagraphs implication only covers the loader's
#: original long paragraphs, so fuzz content stays far below the threshold)
FUZZ_WORDS = TERMS + ("fuzz0001", "fuzz0002", "fuzz0003")


class MutationFuzzer:
    """Drives seeded INSERT/UPDATE/DELETE batches through the statement API
    while keeping the document schema's invariants (inverse links, derived
    largeParagraphs) intact, so the engines must stay differential."""

    def __init__(self, connection, rng: random.Random):
        self.connection = connection
        self.database = connection.database
        self.rng = rng
        #: paragraphs created by the fuzzer (only these may be deleted or
        #: have their content rewritten: loader paragraphs participate in
        #: the derived largeParagraphs set)
        self.pool: list = []

    def _content(self) -> str:
        count = self.rng.randint(2, 6)
        return " ".join(self.rng.choice(FUZZ_WORDS) for _ in range(count))

    def _sections(self) -> list:
        return self.database.extension("Section")

    def _link(self, section, oid) -> None:
        paragraphs = set(self.database.value(section, "paragraphs") or set())
        paragraphs.add(oid)
        self.database.update(section, paragraphs=paragraphs)

    def _unlink(self, section, oid) -> None:
        paragraphs = set(self.database.value(section, "paragraphs") or set())
        paragraphs.discard(oid)
        self.database.update(section, paragraphs=paragraphs)

    def insert_batch(self) -> None:
        router = self.connection.router
        rows = [{"n": self.rng.choice(NUMBERS),
                 "s": self.rng.choice(self._sections()),
                 "c": self._content()}
                for _ in range(self.rng.randint(2, 8))]
        result = router.executemany(
            "INSERT INTO Paragraph (number, section, content) "
            "VALUES (:n, :s, :c)", rows)
        assert result.rowcount == len(rows)
        for row, oid in zip(rows, result.oids):
            self._link(row["s"], oid)  # maintain the inverse link
            self.pool.append(oid)

    def update_batch(self) -> None:
        cursor = self.connection.cursor()
        cursor.execute(
            "UPDATE Paragraph p SET number = :n WHERE p.number == :m",
            {"n": self.rng.choice(NUMBERS), "m": self.rng.choice(NUMBERS)})
        if self.rng.random() < 0.5:
            cursor.execute(
                "UPDATE Section s SET number = s.number + 0 "
                "WHERE s.number == :m", {"m": self.rng.choice(NUMBERS)})
        live = [oid for oid in self.pool if self.database.exists(oid)]
        if live:
            cursor.execute(
                "UPDATE Paragraph p SET content = :c WHERE p == :oid",
                {"c": self._content(), "oid": self.rng.choice(live)})

    def delete_batch(self) -> None:
        live = [oid for oid in self.pool if self.database.exists(oid)]
        self.rng.shuffle(live)
        for oid in live[:self.rng.randint(0, 3)]:
            self._unlink(self.database.value(oid, "section"), oid)
            result = self.connection.cursor().execute(
                "DELETE FROM Paragraph p WHERE p == :oid", {"oid": oid})
            assert result.rowcount == 1

    def mutate(self) -> None:
        self.insert_batch()
        self.update_batch()
        self.delete_batch()


def assert_value_index_consistent(database, class_name, prop) -> None:
    """A hash/sorted index must mirror the deep extension exactly."""
    index = database.indexes.get(class_name, prop)
    expected: dict = {}
    for oid in database.extension(class_name):
        value = database.get(oid).get_or_none(prop)
        if value is not None:
            expected.setdefault(value, set()).add(oid)
    assert len(index) == sum(len(oids) for oids in expected.values())
    for value, oids in expected.items():
        assert index.lookup(value) == oids, \
            f"{class_name}.{prop} index diverges for key {value!r}"


def assert_text_index_consistent(database, class_name, prop) -> None:
    """The inverted index must agree with one rebuilt from the extension."""
    from repro.datamodel.ir import InvertedTextIndex

    engine = database.text_index(class_name, prop)
    rebuilt = InvertedTextIndex()
    for oid in database.extension(class_name):
        content = database.get(oid).get_or_none(prop)
        rebuilt.index_text(oid, str(content))
    for term in FUZZ_WORDS + ("word0001", "Implementation"):
        assert engine.retrieve(term) == rebuilt.retrieve(term), \
            f"text index diverges for term {term!r}"


def assert_partitions_consistent(database) -> None:
    """Concatenated hash partitions must equal the extension, per class."""
    for class_name in database.schema.class_names():
        extension = Counter(database.extension(class_name))
        partitions = Counter(
            oid for part in database.extension_partitions(class_name)
            for oid in part)
        assert partitions == extension, \
            f"partitions diverge from extension for {class_name}"


@pytest.mark.parametrize("seed", MUTATION_SEEDS)
def test_fuzz_mutations_interleaved_with_queries(seed):
    """Seeded INSERT/UPDATE/DELETE interleavings between queries: engine
    results stay multiset-identical and partitions / hash / sorted / text
    indexes remain consistent with the extensions after every batch."""
    from repro import connect

    database = generate_document_database(n_documents=2)
    knowledge = document_knowledge(database.schema)
    connection = connect(database, knowledge=knowledge)
    # extra index DDL through the statement API: plans over mutated data
    # may now pick index access paths, which must stay maintained
    connection.execute("CREATE SORTED INDEX ON Paragraph(number)")
    connection.execute("CREATE HASH INDEX ON Section(number)")

    sessions = {
        "sequential": Session(database, knowledge=knowledge, parallelism=1),
        "parallel": Session(database, knowledge=knowledge, parallelism=DEGREE),
    }
    rng = random.Random(seed)
    fuzzer = MutationFuzzer(connection, rng)
    generator = QueryGenerator(rng)

    for _ in range(4):
        fuzzer.mutate()

        # structural consistency after the mutation batch
        assert_value_index_consistent(database, "Paragraph", "number")
        assert_value_index_consistent(database, "Section", "number")
        assert_value_index_consistent(database, "Document", "title")
        assert_text_index_consistent(database, "Paragraph", "content")
        assert_partitions_consistent(database)

        # differential queries over the mutated database: interpreter vs
        # compiled vs prepared on naive/optimized/parallel/forced plans
        for _ in range(4):
            text, parameters = generator.generate()
            run_one(text, parameters, database, sessions)

        # the plan-cache-served cursor must agree with a fresh pipeline
        text, parameters = generator.generate()
        streamed = Counter(
            make_hashable(value) for value in
            connection.execute(text, parameters or None))
        reference = Counter(
            make_hashable(value) for value in
            sessions["sequential"].execute(
                text, parameters=parameters or None).values)
        assert streamed == reference, \
            f"cursor diverges after mutations: {text!r}"


# ----------------------------------------------------------------------
# interleaved-transaction fuzzing: FWW conflicts vs a sequential model
# ----------------------------------------------------------------------
TXN_SEEDS = (3, 29, 71, 113)


@pytest.fixture(scope="module")
def txn_stack():
    """One shared service (warm plan cache) plus an Account class with a
    hash index on the immutable key, so transactional WHERE-queries also
    exercise snapshot index views."""
    from repro import connect
    from repro.service.service import QueryService

    database = generate_document_database(n_documents=1)
    service = QueryService(database)
    bootstrap = connect(database, service=service)
    bootstrap.execute("CREATE CLASS Account (name: STRING, balance: INT)")
    bootstrap.execute("CREATE HASH INDEX ON Account(name)")
    return database, service


def run_txn_case(tag: str, rng: random.Random, database, service) -> None:
    """One seeded case: create accounts, run 2–3 interleaved transactions
    over them, commit in random order, and check (a) snapshot isolation of
    every still-open transaction, (b) first-writer-wins conflicts exactly
    where the sequential model predicts them, (c) the final state equals
    the model's replay of the winners in commit order."""
    from repro import connect
    from repro.errors import TransactionConflictError

    setup = connect(database, service=service)
    names = [f"{tag}n{i}" for i in range(rng.randint(2, 4))]
    model = {name: rng.randint(0, 100) for name in names}
    setup.executemany("INSERT INTO Account (name, balance) VALUES (:n, :b)",
                      [{"n": n, "b": b} for n, b in model.items()])

    txns = []
    for t in range(rng.randint(2, 3)):
        ops = []
        for o in range(rng.randint(1, 3)):
            kind = rng.choice(("update", "update", "delete", "insert"))
            if kind == "update":
                ops.append(("update", rng.choice(names), rng.randint(0, 100)))
            elif kind == "delete":
                ops.append(("delete", rng.choice(names), None))
            else:
                ops.append(("insert", f"{tag}t{t}i{o}", rng.randint(0, 100)))
        txns.append({"connection": connect(database, service=service),
                     "ops": ops,
                     "commit": rng.random() < 0.8})

    for txn in txns:
        txn["connection"].execute("BEGIN")

    # execute every transaction's ops in a random interleaving (per-txn
    # order is preserved; cross-txn order is the fuzzed dimension)
    schedule = [index for index, txn in enumerate(txns)
                for _ in txn["ops"]]
    rng.shuffle(schedule)
    progress = dict.fromkeys(range(len(txns)), 0)
    for index in schedule:
        txn = txns[index]
        kind, name, balance = txn["ops"][progress[index]]
        progress[index] += 1
        connection = txn["connection"]
        if kind == "update":
            connection.execute(
                "UPDATE Account a SET balance = :b WHERE a.name == :n",
                {"b": balance, "n": name})
        elif kind == "delete":
            connection.execute("DELETE FROM Account a WHERE a.name == :n",
                               {"n": name})
        else:
            connection.execute(
                "INSERT INTO Account (name, balance) VALUES (:n, :b)",
                {"n": name, "b": balance})

    def write_set(txn) -> set:
        return {name for kind, name, _ in txn["ops"] if kind != "insert"}

    # commit (or roll back) in a random order; the model admits a
    # transaction iff its write set is disjoint from every earlier winner's
    order = list(range(len(txns)))
    rng.shuffle(order)
    written: set = set()
    state = dict(model)
    for index in order:
        txn = txns[index]
        connection = txn["connection"]
        targets = write_set(txn)
        if targets:
            # snapshot isolation: a still-open transaction reads its BEGIN
            # snapshot even after other transactions committed over it
            probe = sorted(targets)[0]
            assert connection.execute(
                "ACCESS a.balance FROM a IN Account WHERE a.name == :n",
                {"n": probe}).fetchall() == [model[probe]], \
                f"open transaction leaked committed state ({tag})"
        if not txn["commit"]:
            connection.execute("ROLLBACK")
            continue
        if targets & written:
            with pytest.raises(TransactionConflictError):
                connection.execute("COMMIT")
            continue
        connection.execute("COMMIT")
        written |= targets
        for kind, name, balance in txn["ops"]:
            if kind == "update":
                if name in state:
                    state[name] = balance
            elif kind == "delete":
                state.pop(name, None)
            else:
                state[name] = balance

    # final state must equal the sequential model's replay
    checker = connect(database, service=service)
    inserted = [name for txn in txns for kind, name, _ in txn["ops"]
                if kind == "insert"]
    for name in names + inserted:
        rows = checker.execute(
            "ACCESS a.balance FROM a IN Account WHERE a.name == :n",
            {"n": name}).fetchall()
        expected = [state[name]] if name in state else []
        assert rows == expected, \
            f"final state diverges from the model for {name!r}"


@pytest.mark.parametrize("seed", TXN_SEEDS)
def test_fuzz_interleaved_transactions(seed, txn_stack):
    """Seeded interleaved BEGIN/COMMIT/ROLLBACK transactions over a shared
    service: snapshot reads, first-writer-wins conflicts and final states
    all match a sequential dictionary model (~N_CASES cases across the
    seed batches)."""
    database, service = txn_stack
    rng = random.Random(seed)
    cases = max(N_CASES // len(TXN_SEEDS), 1)
    for case in range(cases):
        run_txn_case(f"c{seed}x{case}_", rng, database, service)


def test_parameters_reach_parallel_worker_threads(fuzz_db):
    """Bind parameters are thread-local; the parallel operators must
    propagate the caller's bindings into the morsel workers."""
    from repro.vql.parser import parse_expression

    plan = ParallelScan("p", "Paragraph",
                        condition=parse_expression("p.number == :n"),
                        degree=DEGREE)
    executable = prepare_plan(plan, fuzz_db)
    for n in (1, 2, 1, 5):
        rows = executable.run({"n": n})
        expected = [row for row in execute_plan_interpreted(
                        ClassScan("p", "Paragraph"), fuzz_db)
                    if fuzz_db.value(row["p"], "number") == n]
        assert multiset(rows) == multiset(expected)

    # unbound parameter surfaces as an error even from worker threads
    from repro.errors import ExecutionError
    with pytest.raises(ExecutionError):
        executable.run()


# ----------------------------------------------------------------------
# crash-recovery fuzzing: WAL torn at a random byte offset vs an oracle
# ----------------------------------------------------------------------
#: total crash-recovery schedules across the seed batches
N_CRASH_CASES = int(os.environ.get("REPRO_CRASH_CASES", "100"))
CRASH_SEEDS = (7, 19, 43, 101)


class CrashOracle:
    """Replays the *committed-record prefix* of a WAL independently of the
    storage adapter: a dict-of-dicts model of classes, live objects (in
    creation order), allocator counters, index definitions and analyzed
    classes.  Whatever the adapter recovers must equal this model."""

    def __init__(self):
        self.classes: dict[str, object] = {}
        self.objects: dict[tuple[str, int], dict] = {}
        self.order: dict[str, list[int]] = {}
        self.next_serial: dict[str, int] = {}
        self.indexes: set[tuple[str, str, str]] = set()
        self.analyzed: set[str] = set()

    def apply(self, record: dict) -> None:
        from repro.storage.encoding import decode_values

        kind = record["kind"]
        if kind == "commit":
            for op in record["ops"]:
                tag = op[0]
                if tag == "create":
                    _, class_name, serial, values = op
                    self.objects[(class_name, serial)] = decode_values(values)
                    self.order.setdefault(class_name, []).append(serial)
                    self.next_serial[class_name] = max(
                        self.next_serial.get(class_name, 0), serial)
                elif tag == "update":
                    _, class_name, serial, values = op
                    self.objects[(class_name, serial)].update(
                        decode_values(values))
                else:
                    _, class_name, serial = op
                    del self.objects[(class_name, serial)]
                    self.order[class_name].remove(serial)
        elif kind == "create_class":
            name, superclass, props = record["args"]
            self.classes[name] = (superclass, tuple(map(tuple, props)))
        elif kind == "create_index":
            index_kind, class_name, prop = record["args"]
            self.indexes.add((index_kind, class_name, prop))
        elif kind == "drop_index":
            class_name, prop, text = record["args"]
            self.indexes = {entry for entry in self.indexes
                            if not (entry[1] == class_name
                                    and entry[2] == prop
                                    and (entry[0] == "text") == text)}
        elif kind == "analyze":
            self.analyzed.add(record["args"][0])
        else:  # pragma: no cover - format drift guard
            raise AssertionError(f"unknown WAL record kind {kind!r}")


def _crash_workload(connection, rng: random.Random) -> None:
    """A seeded schedule of DML / executemany / transactions / DDL."""
    cursor = connection.cursor()
    cursor.execute("CREATE CLASS Account (name: STRING, balance: INT)")
    if rng.random() < 0.5:
        cursor.execute("CREATE HASH INDEX ON Account(name)")
    if rng.random() < 0.3:
        cursor.execute("CREATE SORTED INDEX ON Account(balance)")
    created = 0
    for _ in range(rng.randint(4, 9)):
        action = rng.random()
        if action < 0.35:
            batch = [{"n": f"acct{created + i}", "b": rng.randint(0, 100)}
                     for i in range(rng.randint(2, 6))]
            created += len(batch)
            cursor.executemany(
                "INSERT INTO Account (name, balance) VALUES (:n, :b)", batch)
        elif action < 0.5:
            cursor.execute(
                "INSERT INTO Account (name, balance) VALUES (:n, :b)",
                {"n": f"acct{created}", "b": rng.randint(0, 100)})
            created += 1
        elif action < 0.65:
            cursor.execute(
                "UPDATE Account a SET balance = a.balance + :d "
                "WHERE a.balance < :m",
                {"d": rng.randint(1, 10), "m": rng.randint(0, 100)})
        elif action < 0.75:
            cursor.execute("DELETE FROM Account a WHERE a.balance == :b",
                           {"b": rng.randint(0, 100)})
        elif action < 0.9:
            cursor.execute("BEGIN")
            for _ in range(rng.randint(1, 3)):
                if rng.random() < 0.6:
                    cursor.execute(
                        "INSERT INTO Account (name, balance) VALUES (:n, :b)",
                        {"n": f"txn{created}", "b": rng.randint(0, 100)})
                    created += 1
                else:
                    cursor.execute(
                        "UPDATE Account a SET balance = :b "
                        "WHERE a.balance == :m",
                        {"b": rng.randint(0, 100),
                         "m": rng.randint(0, 100)})
            cursor.execute("COMMIT" if rng.random() < 0.7 else "ROLLBACK")
        else:
            cursor.execute("ANALYZE Account")


def _check_recovered_equals_oracle(database, oracle: CrashOracle) -> None:
    for class_name in oracle.classes:
        assert database.schema.has_class(class_name)
        live = [serial for serial in oracle.order.get(class_name, ())
                if (class_name, serial) in oracle.objects]
        recovered = [oid.serial
                     for oid in database.extension(class_name, deep=False)]
        assert recovered == live, \
            f"{class_name} extension order diverges from the oracle"
        for serial in live:
            oid = next(oid for oid in database.extension(class_name,
                                                         deep=False)
                       if oid.serial == serial)
            assert database.get(oid).values \
                == oracle.objects[(class_name, serial)], \
                f"recovered values diverge for {class_name}:{serial}"
        counters = database.oid_counters()
        assert counters.get(class_name, 0) \
            >= oracle.next_serial.get(class_name, 0), \
            "recovered allocator could reuse a logged serial"
    for index_kind, class_name, prop in oracle.indexes:
        if class_name not in oracle.classes:
            continue
        if index_kind == "text":
            assert database.text_index(class_name, prop) is not None
        else:
            index = database.indexes.get(class_name, prop)
            assert index is not None and index.kind == index_kind
    for class_name in oracle.analyzed:
        if class_name in oracle.classes:
            assert class_name in database.stats_catalog.analyzed_classes()


def _query_recovered_through_all_engines(database, oracle: CrashOracle,
                                         rng: random.Random) -> None:
    """The recovered database must serve queries, identically, through the
    interpreter, the compiled engine and the optimized parallel path."""
    threshold = rng.randint(0, 100)
    text = "ACCESS a.balance FROM a IN Account WHERE a.balance >= :m"
    # ACCESS has set semantics: two accounts sharing a balance produce one
    # output value, so the oracle's expectation is a set, not a multiset
    expected = {
        values["balance"]
        for (class_name, _), values in oracle.objects.items()
        if class_name == "Account" and values["balance"] >= threshold}

    sequential = Session(database, parallelism=1)
    parallel = Session(database, parallelism=DEGREE)
    bound = Session._bind(sequential.analyze(text), {"m": threshold})
    naive_plan = naive_implementation(translate_query(bound).plan)
    interpreted = multiset(execute_plan_interpreted(naive_plan, database))
    assert multiset(execute_plan(naive_plan, database)) == interpreted, \
        "compiled engine diverges on the recovered database"
    seq_result = sequential.execute(text, parameters={"m": threshold})
    assert set(seq_result.values) == expected, \
        "optimized sequential diverges from the oracle"
    assert multiset(seq_result.rows) == interpreted, \
        "optimized sequential diverges from the interpreter"
    par_result = parallel.execute(text, parameters={"m": threshold})
    assert set(par_result.values) == expected, \
        "optimized parallel diverges from the oracle"


def run_crash_case(rng: random.Random) -> int:
    """One schedule: run a durable workload, tear the WAL at a random byte
    offset, recover, and compare against the oracle's replay of the
    committed-record prefix.  Returns the number of surviving records."""
    import shutil
    import tempfile

    from repro import connect
    from repro.datamodel.database import Database
    from repro.datamodel.schema import Schema
    from repro.storage import FileStorageAdapter, read_records

    work_dir = tempfile.mkdtemp(prefix="crash-work-")
    recover_dir = tempfile.mkdtemp(prefix="crash-recover-")
    try:
        connection = connect(Database(Schema("crash")), durability="wal",
                             storage_path=work_dir, wal_fsync="never",
                             checkpoint_interval=0)
        _crash_workload(connection, rng)
        connection.close()
        connection.database.close()

        wal = open(os.path.join(work_dir, "wal.log"), "rb").read()
        torn = wal[:rng.randint(0, len(wal))]
        with open(os.path.join(recover_dir, "wal.log"), "wb") as handle:
            handle.write(torn)

        oracle = CrashOracle()
        survivors = 0
        valid = 0
        for payload, end in read_records(torn):
            oracle.apply(payload)
            survivors += 1
            valid = end

        database = Database(Schema("crash"))
        adapter = FileStorageAdapter(recover_dir, fsync="never",
                                     checkpoint_interval=0)
        database.attach_storage(adapter)
        assert adapter.counters()["recovery_discarded_bytes"] \
            == len(torn) - valid
        _check_recovered_equals_oracle(database, oracle)
        if "Account" in oracle.classes:
            _query_recovered_through_all_engines(database, oracle, rng)
        database.close()
        return survivors
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
        shutil.rmtree(recover_dir, ignore_errors=True)


@pytest.mark.parametrize("seed", CRASH_SEEDS)
def test_fuzz_crash_recovery_batch(seed):
    """Seeded crash-recovery schedules (~N_CRASH_CASES across the seed
    batches): the state recovered from a randomly torn WAL must equal the
    oracle's replay of the committed-record prefix, and the reopened
    database must serve queries through every engine."""
    rng = random.Random(seed)
    cases = max(N_CRASH_CASES // len(CRASH_SEEDS), 1)
    non_trivial = 0
    for _ in range(cases):
        if run_crash_case(rng) > 1:
            non_trivial += 1
    # the torn offsets must not degenerate into always-empty prefixes
    assert non_trivial >= cases // 4
