"""The durable storage subsystem: WAL framing, checkpoints, recovery.

Covers the record format (length-prefix + CRC, torn-tail detection), the
value/type codec, end-to-end durability through the statement API (DML,
executemany batches, transactions, DDL, ANALYZE), explicit and automatic
checkpoints, the crash window between checkpoint rename and WAL truncate,
fsync policies, clean-close flush semantics, watermark-driven version
pruning under pin pressure, and the storage telemetry surfaced through
``Connection.metrics()``.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.api.connection import connect
from repro.datamodel.database import Database
from repro.datamodel.oid import OID
from repro.datamodel.schema import ClassDef, PropertyDef, Schema
from repro.datamodel.types import INT, STRING, ObjectType, SetType, set_of
from repro.errors import SchemaError, ServiceError
from repro.storage import (
    FileStorageAdapter,
    MemoryAdapter,
    WriteAheadLog,
    encode_record,
    read_records,
)
from repro.storage.encoding import (
    decode_type,
    decode_value,
    encode_type,
    encode_value,
)

QUERY = "ACCESS [n: i.name, v: i.value] FROM i IN Item"


def empty_database() -> Database:
    return Database(Schema("durable"))


def static_database() -> Database:
    """A database whose Item class comes from the static schema."""
    schema = Schema("static")
    item = ClassDef("Item")
    item.add_property(PropertyDef("name", STRING))
    item.add_property(PropertyDef("value", INT))
    schema.add_class(item)
    return Database(schema)


def durable(tmp_path, database=None, **kwargs):
    kwargs.setdefault("wal_fsync", "never")
    return connect(database if database is not None else empty_database(),
                   durability="wal", storage_path=str(tmp_path), **kwargs)


def rows(connection) -> list[tuple]:
    cursor = connection.execute(QUERY)
    return sorted((row["n"], row["v"]) for row in cursor.fetchall())


def seed_items(connection, count: int = 20) -> None:
    connection.execute("CREATE CLASS Item (name: STRING, value: INT)")
    connection.executemany(
        "INSERT INTO Item (name, value) VALUES (:n, :v)",
        [{"n": f"item{i}", "v": i} for i in range(count)])


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
def test_record_framing_round_trip():
    payloads = [{"kind": "commit", "ts": i, "ops": [["create", "C", i, {}]]}
                for i in range(5)]
    data = b"".join(encode_record(p) for p in payloads)
    decoded = [payload for payload, _ in read_records(data)]
    assert decoded == payloads


@pytest.mark.parametrize("cut", (1, 3, 4, 7))
def test_torn_tail_is_detected(cut):
    first = encode_record({"ts": 1})
    second = encode_record({"ts": 2})
    data = first + second[:len(second) - cut]
    decoded = list(read_records(data))
    assert [payload for payload, _ in decoded] == [{"ts": 1}]
    assert decoded[-1][1] == len(first)  # valid length = end of record 1


def test_corrupt_checksum_stops_the_reader():
    first = encode_record({"ts": 1})
    second = bytearray(encode_record({"ts": 2}))
    second[-1] ^= 0xFF  # flip a payload byte under an intact header
    decoded = [payload for payload, _ in read_records(first + bytes(second))]
    assert decoded == [{"ts": 1}]


def test_wal_append_read_truncate(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal.log"), fsync="never")
    for i in range(3):
        wal.append({"ts": i})
    records, valid, total = wal.read_all()
    assert [r["ts"] for r in records] == [0, 1, 2]
    assert valid == total == wal.size()
    wal.truncate(0)
    assert wal.read_all() == ([], 0, 0)
    wal.append({"ts": 9})  # appends resume cleanly after truncation
    assert [r["ts"] for r in wal.read_all()[0]] == [9]
    wal.close()


def test_wal_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ServiceError):
        WriteAheadLog(str(tmp_path / "wal.log"), fsync="sometimes")


def test_fsync_policy_always_vs_never(tmp_path):
    always = WriteAheadLog(str(tmp_path / "a.log"), fsync="always")
    never = WriteAheadLog(str(tmp_path / "n.log"), fsync="never")
    for i in range(4):
        always.append({"ts": i})
        never.append({"ts": i})
    assert always.fsyncs == 4
    assert never.fsyncs == 0
    assert never.flush(fsync=True) >= 0.0  # explicit flush still barriers
    assert never.fsyncs == 1
    always.close()
    never.close()


# ----------------------------------------------------------------------
# value / type codec
# ----------------------------------------------------------------------
def test_value_codec_round_trip():
    values = {
        "scalar": 42,
        "real": 1.5,
        "text": "héllo",
        "flag": True,
        "nothing": None,
        "oid": OID("Item", 7),
        "refs": {OID("Item", 1), OID("Item", 2)},
        "pair": (1, "two"),
        "seq": [1, [2, 3]],
        "map": {1: "one", ("k",): {OID("Doc", 3)}},
    }
    for value in values.values():
        encoded = encode_value(value)
        json.dumps(encoded)  # must be JSON-representable
        assert decode_value(encoded) == value


def test_value_codec_rejects_unknown_types():
    with pytest.raises(ServiceError):
        encode_value(object())
    with pytest.raises(ServiceError):
        decode_value({"$nope": 1})


def test_type_codec_round_trip():
    for vml_type, target in (
            (STRING, None), (INT, None),
            (ObjectType("Doc"), "Doc"),
            (set_of(ObjectType("Doc")), "Doc"),
            (SetType(INT), None)):
        spec = encode_type(vml_type)
        decoded, decoded_target = decode_type(spec)
        assert decoded == vml_type
        assert decoded_target == target


# ----------------------------------------------------------------------
# end-to-end durability through the statement API
# ----------------------------------------------------------------------
def test_dml_survives_reopen(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 30)
    connection.execute("UPDATE Item i SET value = i.value + 100 "
                       "WHERE i.value < 5")
    connection.execute("DELETE FROM Item i WHERE i.value == 17")
    before = rows(connection)
    connection.close()

    reopened = durable(tmp_path)
    assert rows(reopened) == before
    assert len(before) == 29
    reopened.close()


def test_ddl_and_analyze_survive_reopen(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection)
    connection.execute("CREATE INDEX ON Item(value)")
    connection.execute("CREATE SORTED INDEX ON Item(name)")
    connection.execute("ANALYZE Item")
    connection.close()

    reopened = durable(tmp_path)
    database = reopened.database
    assert database.indexes.get("Item", "value") is not None
    assert database.indexes.get("Item", "name") is not None
    assert "Item" in database.stats_catalog.analyzed_classes()
    # recovered indexes must serve queries
    hits = reopened.execute(
        "ACCESS i FROM i IN Item WHERE i.value == 7").fetchall()
    assert len(hits) == 1
    reopened.close()


def test_drop_index_survives_reopen(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection)
    connection.execute("CREATE INDEX ON Item(value)")
    connection.execute("DROP INDEX ON Item(value)")
    connection.close()

    reopened = durable(tmp_path)
    assert reopened.database.indexes.get("Item", "value") is None
    reopened.close()


def test_object_references_and_sets_survive_reopen(tmp_path):
    connection = durable(tmp_path)
    connection.execute("CREATE CLASS Doc (title: STRING)")
    connection.execute("CREATE CLASS Memo ISA Doc (body: STRING, "
                       "refs: {Memo})")
    connection.execute("INSERT INTO Memo (title, body) VALUES ('a', 'x')")
    connection.execute("INSERT INTO Memo (title, body) VALUES ('b', 'y')")
    database = connection.database
    first, second = sorted(database.extension("Memo", deep=False))
    database.update(first, refs={second})
    connection.close()

    reopened = durable(tmp_path)
    recovered = sorted(reopened.database.extension("Memo", deep=False))
    assert recovered == [first, second]
    assert reopened.database.value(first, "refs") == {second}
    # ISA subclassing recovered: Memo rows are part of the deep Doc extension
    assert len(reopened.database.extension("Doc")) == 2
    reopened.close()


def test_transaction_commit_is_one_wal_record(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 5)
    records_before = connection.database.storage.counters()["wal_records"]
    connection.begin()
    connection.execute("INSERT INTO Item (name, value) VALUES ('t1', 100)")
    connection.execute("INSERT INTO Item (name, value) VALUES ('t2', 101)")
    connection.execute("UPDATE Item i SET value = 0 WHERE i.value == 2")
    connection.commit()
    counters = connection.database.storage.counters()
    assert counters["wal_records"] == records_before + 1
    connection.close()

    reopened = durable(tmp_path)
    assert ("t2", 101) in rows(reopened)
    assert ("item2", 0) in rows(reopened)
    reopened.close()


def test_rolled_back_transaction_leaves_no_wal_record(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 5)
    records_before = connection.database.storage.counters()["wal_records"]
    connection.begin()
    connection.execute("INSERT INTO Item (name, value) VALUES ('never', -1)")
    connection.rollback()
    assert connection.database.storage.counters()["wal_records"] \
        == records_before
    connection.close()

    reopened = durable(tmp_path)
    assert ("never", -1) not in rows(reopened)
    reopened.close()


def test_exit_after_exception_rolls_back_then_flushes(tmp_path):
    with pytest.raises(RuntimeError):
        with durable(tmp_path) as connection:
            seed_items(connection, 5)
            connection.begin()
            connection.execute(
                "INSERT INTO Item (name, value) VALUES ('doomed', -1)")
            raise RuntimeError("boom")

    reopened = durable(tmp_path)
    recovered = rows(reopened)
    assert len(recovered) == 5  # the seed survived the unclean exit
    assert ("doomed", -1) not in recovered
    reopened.close()


def test_static_schema_classes_are_not_checkpointed(tmp_path):
    connection = durable(tmp_path, database=static_database())
    connection.executemany(
        "INSERT INTO Item (name, value) VALUES (:n, :v)",
        [{"n": f"s{i}", "v": i} for i in range(8)])
    connection.checkpoint()
    before = rows(connection)
    connection.close()

    state = json.loads((tmp_path / "checkpoint.json").read_bytes())
    assert state["classes"] == []  # Item comes from the static schema

    reopened = durable(tmp_path, database=static_database())
    assert rows(reopened) == before
    reopened.close()


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def test_explicit_checkpoint_truncates_wal(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 50)
    connection.execute("CREATE INDEX ON Item(value)")
    connection.execute("ANALYZE Item")
    ts = connection.checkpoint()
    assert ts == connection.database.clock.published
    assert os.path.getsize(tmp_path / "wal.log") == 0
    before = rows(connection)
    connection.close()

    reopened = durable(tmp_path)
    assert rows(reopened) == before
    assert reopened.database.indexes.get("Item", "value") is not None
    assert "Item" in reopened.database.stats_catalog.analyzed_classes()
    assert reopened.database.clock.published == ts
    counters = reopened.database.storage.counters()
    assert counters["recovery_replayed_records"] == 0
    reopened.close()


def test_checkpoint_plus_wal_tail_replay(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 20)
    connection.checkpoint()
    connection.execute("UPDATE Item i SET value = i.value * 2 "
                       "WHERE i.value < 3")
    connection.execute("DELETE FROM Item i WHERE i.value == 10")
    connection.execute("CREATE INDEX ON Item(value)")
    before = rows(connection)
    connection.close()

    reopened = durable(tmp_path)
    assert rows(reopened) == before
    assert reopened.database.storage.counters()[
        "recovery_replayed_records"] == 3
    reopened.close()


def test_new_oids_after_checkpoint_do_not_reuse_serials(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 10)
    connection.execute("DELETE FROM Item i WHERE i.value >= 5")
    connection.checkpoint()
    connection.close()

    reopened = durable(tmp_path)
    cursor = reopened.execute(
        "INSERT INTO Item (name, value) VALUES ('fresh', 99)")
    assert cursor.lastoid.serial == 11  # serials 6..10 are never reused
    reopened.close()


def test_automatic_checkpoint_after_interval(tmp_path):
    connection = durable(tmp_path, checkpoint_interval=5)
    seed_items(connection, 3)  # CREATE CLASS + 1 executemany commit
    for i in range(6):
        connection.execute(
            "INSERT INTO Item (name, value) VALUES (:n, :v)",
            {"n": f"auto{i}", "v": 100 + i})
    counters = connection.database.storage.counters()
    assert counters["checkpoints_completed"] >= 1
    before = rows(connection)
    connection.close()

    reopened = durable(tmp_path, checkpoint_interval=5)
    assert rows(reopened) == before
    reopened.close()


def test_crash_between_checkpoint_rename_and_truncate(tmp_path):
    """The crash window: new checkpoint on disk, WAL not yet truncated.

    Replay must skip every WAL record the checkpoint already covers —
    commit records at or below the checkpoint timestamp and idempotent
    DDL — so recovery does not double-apply.
    """
    connection = durable(tmp_path)
    seed_items(connection, 15)
    connection.execute("CREATE INDEX ON Item(value)")
    connection.execute("ANALYZE Item")
    wal_bytes = (tmp_path / "wal.log").read_bytes()
    connection.checkpoint()
    before = rows(connection)
    connection.close()
    # resurrect the pre-checkpoint WAL next to the new checkpoint
    (tmp_path / "wal.log").write_bytes(wal_bytes)

    reopened = durable(tmp_path)
    assert rows(reopened) == before
    assert reopened.database.object_count() == 15
    counters = reopened.database.storage.counters()
    # commit, create_class and create_index records are all skipped; only
    # the ANALYZE record re-runs (recomputing identical statistics is
    # idempotent, not a double-apply)
    assert counters["recovery_replayed_records"] <= 1
    reopened.close()


# ----------------------------------------------------------------------
# torn writes
# ----------------------------------------------------------------------
def test_torn_final_record_is_discarded(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 10)
    connection.execute(
        "INSERT INTO Item (name, value) VALUES ('intact', 50)")
    connection.close()
    wal_path = tmp_path / "wal.log"
    intact = wal_path.read_bytes()
    # tear the last record mid-payload, as a crash mid-append would
    wal_path.write_bytes(intact[:len(intact) - 7])

    reopened = durable(tmp_path)
    recovered = rows(reopened)
    assert ("intact", 50) not in recovered  # the torn commit is gone
    assert len(recovered) == 10             # everything before it survived
    counters = reopened.database.storage.counters()
    assert counters["recovery_discarded_bytes"] > 0
    # the log was truncated to the valid prefix: appends resume cleanly
    reopened.execute("INSERT INTO Item (name, value) VALUES ('after', 51)")
    reopened.close()

    third = durable(tmp_path)
    assert ("after", 51) in rows(third)
    third.close()


def test_corrupt_checkpoint_is_refused(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 3)
    connection.checkpoint()
    connection.close()
    (tmp_path / "checkpoint.json").write_bytes(b"{not json")

    with pytest.raises(ServiceError, match="corrupt checkpoint"):
        durable(tmp_path)


# ----------------------------------------------------------------------
# adapter lifecycle and selection
# ----------------------------------------------------------------------
def test_memory_mode_attaches_nothing():
    connection = connect(empty_database(), durability="memory")
    assert connection.database.storage is None
    connection.close()


def test_unknown_durability_mode_is_rejected():
    with pytest.raises(ServiceError, match="unknown durability mode"):
        connect(empty_database(), durability="floppy")


def test_env_durability_selection(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DURABILITY", "wal")
    monkeypatch.setenv("REPRO_STORAGE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_WAL_FSYNC", "never")
    connection = connect(empty_database())
    adapter = connection.database.storage
    assert adapter is not None and adapter.durable
    assert adapter.path.startswith(str(tmp_path))
    assert adapter.wal.fsync_policy == "never"
    connection.close()


def test_memory_adapter_is_a_no_op(tmp_path):
    database = empty_database()
    adapter = database.attach_storage(MemoryAdapter())
    assert not adapter.active
    connection = connect(database)
    seed_items(connection, 3)
    assert adapter.counters() == {}
    assert adapter.checkpoint() is None
    connection.close()


def test_second_durable_adapter_is_rejected(tmp_path):
    database = empty_database()
    connection = durable(tmp_path / "a", database=database)
    adapter = database.storage
    # re-attaching the same adapter is idempotent
    assert database.attach_storage(adapter) is adapter
    with pytest.raises(SchemaError):
        database.attach_storage(
            FileStorageAdapter(str(tmp_path / "b"), fsync="never"))
    # a second connect() on the same database reuses the first adapter
    second = connect(database, durability="wal",
                     storage_path=str(tmp_path / "c"))
    assert database.storage is adapter
    assert not (tmp_path / "c").exists()
    second.close()
    connection.close()


def test_database_close_detaches_and_seals_the_adapter(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 2)
    database = connection.database
    adapter = database.storage
    connection.close()          # flushes, keeps the adapter attached
    assert database.storage is adapter
    database.close()            # flushes again, then seals the adapter
    assert database.storage is None
    with pytest.raises(ServiceError):
        adapter.log_ddl(("analyze", "Item"))
    database.close()            # idempotent


def test_checkpoint_without_durable_adapter_is_none():
    # pin durability explicitly so the test also holds under the CI
    # matrix entry that exports REPRO_DURABILITY=wal for the whole run
    connection = connect(empty_database(), durability="memory")
    assert connection.checkpoint() is None
    connection.close()


# ----------------------------------------------------------------------
# version-chain pruning under pin pressure (checkpoint watermark)
# ----------------------------------------------------------------------
def test_version_chains_stay_bounded_under_rolling_pins(tmp_path):
    """Sustained pin pressure with a rolling window: pruning driven by the
    checkpoint watermark keeps history/tombstone memory bounded instead of
    growing with every committed update."""
    connection = durable(tmp_path, checkpoint_interval=0)
    connection.execute("CREATE CLASS Hot (value: INT)")
    connection.execute("INSERT INTO Hot (value) VALUES (0)")
    database = connection.database
    (oid,) = database.extension("Hot", deep=False)

    pins: list[int] = []
    sizes = []
    for round_no in range(12):
        for step in range(25):
            database.update(oid, value=round_no * 100 + step)
        pins.append(database.acquire_snapshot())
        while len(pins) > 2:          # rolling window: release the oldest
            database.release_snapshot(pins.pop(0))
        connection.checkpoint()        # prunes up to the oldest pin
        sizes.append(len(database._history.get(oid, ())))

    # the chain length reflects the rolling window, not total update count
    assert max(sizes[3:]) <= 2 * 25 + 2, sizes
    # pinned snapshots still answer after pruning
    assert database.value_at(oid, "value", pins[-1]) is not None
    for ts in pins:
        database.release_snapshot(ts)
    connection.close()


def test_pinned_snapshot_blocks_pruning_of_its_versions(tmp_path):
    connection = durable(tmp_path, checkpoint_interval=0)
    connection.execute("CREATE CLASS Hot (value: INT)")
    connection.execute("INSERT INTO Hot (value) VALUES (1)")
    database = connection.database
    (oid,) = database.extension("Hot", deep=False)
    pin = database.acquire_snapshot()
    for step in range(10):
        database.update(oid, value=step)
    connection.checkpoint()
    assert database.value_at(oid, "value", pin) == 1  # pin still served
    database.release_snapshot(pin)
    connection.checkpoint()
    assert len(database._history.get(oid, ())) <= 1  # now prunable
    connection.close()


# ----------------------------------------------------------------------
# telemetry
# ----------------------------------------------------------------------
def test_storage_metrics_surface_in_connection_metrics(tmp_path):
    connection = durable(tmp_path, wal_fsync="always")
    seed_items(connection, 10)
    connection.checkpoint()
    exported = connection.metrics()
    counters = exported["counters"]
    assert counters["repro_wal_records"] >= 2
    assert counters["repro_wal_bytes"] > 0
    assert counters["repro_wal_fsyncs"] >= 2
    assert counters["repro_checkpoints_completed"] == 1
    histograms = exported["histograms"]
    assert histograms["repro_wal_append_seconds"]["count"] >= 2
    assert histograms["repro_wal_fsync_seconds"]["count"] >= 2
    prometheus = connection.metrics("prometheus")
    assert "repro_wal_records" in prometheus
    connection.close()


def test_recovery_counters_survive_into_the_service_registry(tmp_path):
    connection = durable(tmp_path)
    seed_items(connection, 10)
    connection.close()

    # recovery runs at attach time, before the service registry exists;
    # bind_telemetry must seed the registry with the lifetime totals
    reopened = durable(tmp_path)
    counters = reopened.metrics()["counters"]
    assert counters["repro_recovery_replayed_records"] == 2
    reopened.close()


def test_checkpoint_emits_a_tracer_span(tmp_path):
    connection = durable(tmp_path, tracing=True)
    seed_items(connection, 5)
    connection.checkpoint()
    names = [span.name for span in connection.tracer.recent()]
    assert "checkpoint" in names
    connection.close()
