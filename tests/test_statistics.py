"""The statistics subsystem: histograms, ANALYZE, and the informed cost model.

Covers the pieces end-to-end:

* equi-depth histogram construction and selectivity interpolation,
* per-property statistics (distinct counts, nulls, MCVs, fan-outs),
* timed per-method cost calibration,
* the ``ANALYZE`` statement (router dispatch, version bump, plan-cache
  eviction),
* incremental staleness under mutations,
* the cost model's statistics-first/defaults-fallback discipline, including
  the plan flip on skewed data that EXP-12 measures.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import connect, open_session
from repro.datamodel.database import Database
from repro.datamodel.schema import ClassDef, MethodDef, MethodKind, PropertyDef, Schema
from repro.datamodel.statistics import (
    EquiDepthHistogram,
    StatisticsCatalog,
)
from repro.datamodel.types import INT, STRING, SetType
from repro.errors import SchemaError, VQLAnalysisError
from repro.optimizer.cost import CostModel
from repro.workloads import generate_document_database


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def skewed_database(n: int = 2000, seed: int = 7,
                    with_methods: bool = False) -> Database:
    """Reading(category, score): 90% of categories share one value."""
    schema = Schema("skewed")
    reading = ClassDef(name="Reading")
    reading.add_property(PropertyDef("category", STRING))
    reading.add_property(PropertyDef("score", INT))
    reading.add_property(PropertyDef("note", STRING))
    if with_methods:
        def slow(ctx, receiver):
            time.sleep(0.002)
            return ctx.value(receiver, "score")

        def fast(ctx, receiver):
            return ctx.value(receiver, "score")

        reading.add_method(MethodDef("slow_score", return_type=INT,
                                     kind=MethodKind.EXTERNAL,
                                     implementation=slow))
        reading.add_method(MethodDef("fast_score", return_type=INT,
                                     implementation=fast))
    schema.add_class(reading)
    database = Database(schema)
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        category = ("common" if rng.random() < 0.9
                    else f"rare{rng.randrange(9)}")
        rows.append({"category": category, "score": rng.randrange(10_000),
                     "note": None if i % 10 == 0 else f"note {i}"})
    database.create_many("Reading", rows)
    return database


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
class TestEquiDepthHistogram:
    def test_uniform_range_interpolates_linearly(self):
        histogram = EquiDepthHistogram.build(list(range(1000)), buckets=10)
        assert histogram is not None
        assert abs(histogram.fraction_leq(499) - 0.5) < 0.05
        assert histogram.fraction_leq(-1) == 0.0
        assert histogram.fraction_leq(9999) == 1.0

    def test_equi_depth_buckets_follow_skew(self):
        # 90% of the mass at value 5: the buckets concentrate there, so a
        # range above it is priced near 10%, not near 50%.
        values = [5] * 900 + list(range(100, 200))
        histogram = EquiDepthHistogram.build(values, buckets=10)
        assert histogram.selectivity_cmp(">", 50) <= 0.15

    def test_range_selectivity_combines_bounds(self):
        histogram = EquiDepthHistogram.build(list(range(100)), buckets=10)
        selectivity = histogram.selectivity_range(25, 74)
        assert 0.35 < selectivity < 0.65

    def test_unorderable_values_build_nothing(self):
        assert EquiDepthHistogram.build([True, False, True]) is None
        assert EquiDepthHistogram.build(["a", 1, "b"]) is None
        assert EquiDepthHistogram.build([1]) is None


# ----------------------------------------------------------------------
# catalog collection
# ----------------------------------------------------------------------
class TestCatalogCollection:
    def test_analyze_collects_per_property_statistics(self):
        database = skewed_database(n=500)
        database.analyze()
        stats = database.stats_catalog.fresh("Reading")
        assert stats is not None and stats.row_count == 500

        category = stats.property_statistics("category")
        assert category.distinct == 10
        assert category.most_common[0][0] == "common"
        assert category.most_common[0][1] > 400
        assert category.selectivity_eq("common") > 0.8
        assert category.selectivity_eq("rare0") < 0.1
        # unseen value inside the domain: residual-uniform estimate
        assert category.selectivity_eq("never-seen") < 0.05
        # unseen value outside [min, max]: near-zero
        assert category.selectivity_eq("zzz-out-of-range") < 0.01

        score = stats.property_statistics("score")
        assert score.histogram is not None
        assert score.min_value >= 0 and score.max_value < 10_000

        note = stats.property_statistics("note")
        assert 0.05 < note.null_fraction < 0.15

    def test_set_valued_fanout_is_measured(self, doc_database):
        doc_database.stats_catalog.analyze(doc_database,
                                           class_name="Document")
        stats = doc_database.stats_catalog.fresh("Document")
        sections = stats.property_statistics("sections")
        assert sections.avg_fanout == pytest.approx(4.0)

    def test_method_calibration_orders_slow_above_fast(self):
        database = skewed_database(n=50, with_methods=True)
        database.analyze()
        catalog = database.stats_catalog
        slow = catalog.method_statistics("slow_score")
        fast = catalog.method_statistics("fast_score")
        assert slow is not None and fast is not None
        assert slow.avg_seconds >= 0.002
        assert slow.cost_units > fast.cost_units
        assert catalog.property_read_seconds > 0.0

    def test_calibration_does_not_pollute_work_counters(self):
        database = skewed_database(n=50, with_methods=True)
        before = database.work_snapshot()["method_calls"]
        database.analyze()
        assert database.work_snapshot()["method_calls"] == before

    def test_analyze_unknown_class_raises(self):
        database = skewed_database(n=10)
        with pytest.raises(SchemaError):
            database.analyze("Nope")


# ----------------------------------------------------------------------
# incremental maintenance / staleness
# ----------------------------------------------------------------------
class TestStaleness:
    def test_mutation_churn_marks_statistics_stale(self):
        database = skewed_database(n=100)
        database.analyze()
        catalog = database.stats_catalog
        assert catalog.fresh("Reading") is not None
        for i in range(40):  # > 25% of 100 rows
            database.create("Reading", category="new", score=i)
        assert catalog.fresh("Reading") is None
        # stale, not gone: the raw entry is still inspectable
        assert catalog.class_statistics("Reading") is not None
        database.analyze("Reading")
        assert catalog.fresh("Reading") is not None

    def test_subclass_churn_stales_superclass_statistics(self):
        # Class statistics cover the deep extension, so bulk-loading a
        # subclass must stop the superclass's histograms from being served.
        database = generate_document_database(n_documents=2)
        database.create_class("Memo", superclass="Document")
        database.analyze()
        catalog = database.stats_catalog
        assert catalog.fresh("Document") is not None
        memos = [{"title": f"memo {i}"} for i in range(5)]
        database.create_many("Memo", memos)
        assert catalog.mutations_since_analyze("Document") == 5
        assert catalog.fresh("Document") is None  # 5 > 25% of 2 documents

    def test_updates_and_deletes_count_as_churn(self):
        database = skewed_database(n=20)
        database.analyze()
        oids = database.extension("Reading")
        for oid in oids[:4]:
            database.update(oid, score=1)
        for oid in oids[4:8]:
            database.delete(oid)
        assert database.stats_catalog.mutations_since_analyze("Reading") == 8
        assert database.stats_catalog.fresh("Reading") is None


# ----------------------------------------------------------------------
# the ANALYZE statement
# ----------------------------------------------------------------------
class TestAnalyzeStatement:
    def test_analyze_statement_bumps_stats_version(self):
        database = skewed_database(n=50)
        connection = connect(database)
        before = database.versions.stats
        result = connection.execute("ANALYZE")
        assert result.rowcount == 1  # one class analyzed
        assert database.versions.stats == before + 1
        assert "Reading" in result.statement_report

    def test_analyze_single_class_and_unknown_class(self):
        database = generate_document_database(n_documents=2)
        connection = connect(database)
        result = connection.execute("ANALYZE Paragraph")
        assert result.rowcount == 1
        assert database.stats_catalog.fresh("Paragraph") is not None
        assert database.stats_catalog.fresh("Document") is None
        with pytest.raises(VQLAnalysisError):
            connection.execute("ANALYZE Nonsense")

    def test_analyze_evicts_cached_plans(self):
        database = skewed_database(n=50)
        connection = connect(database)
        service = connection.service
        query = "ACCESS r FROM r IN Reading WHERE r.score >= 100"
        connection.execute(query).fetchall()
        connection.execute(query).fetchall()
        hits_before = service.cache.statistics.hits
        assert hits_before >= 1
        connection.execute("ANALYZE")
        connection.execute(query).fetchall()
        assert service.cache.statistics.invalidations >= 1
        # and the re-prepared plan is served again afterwards
        connection.execute(query).fetchall()
        assert service.cache.statistics.hits > hits_before

    def test_statement_report_is_reserved_for_reports(self):
        database = skewed_database(n=10)
        connection = connect(database)
        cursor = connection.cursor()
        cursor.execute("CREATE INDEX ON Reading(category)")
        assert cursor.statement_report is None  # DDL echo is not a report
        cursor.execute("ANALYZE Reading")
        assert "Reading" in cursor.statement_report
        cursor.execute("INSERT INTO Reading (category, score) "
                       "VALUES ('x', 1)")
        assert cursor.statement_report is None

    def test_analyze_through_session_and_run_query(self):
        database = skewed_database(n=30)
        session = open_session(database)
        result = session.execute("ANALYZE Reading")
        assert result.kind == "analyze"
        assert database.stats_catalog.fresh("Reading") is not None


# ----------------------------------------------------------------------
# cost model integration
# ----------------------------------------------------------------------
class TestInformedCostModel:
    def test_defaults_without_statistics(self):
        database = skewed_database(n=100)
        model = CostModel(database.schema, database)
        from repro.vql.parser import parse_expression
        condition = parse_expression("r.category == 'common'")
        assert model.condition_selectivity(condition, 100.0) == \
            model.EQUALITY_SELECTIVITY

    def test_statistics_drive_filter_selectivity(self):
        database = skewed_database(n=1000)
        database.analyze()
        model = CostModel(database.schema, database)
        from repro.physical.plans import ClassScan, Filter
        from repro.vql.parser import parse_expression
        scan = ClassScan("r", "Reading")
        common = Filter(parse_expression("r.category == 'common'"), scan)
        rare = Filter(parse_expression("r.category == 'rare0'"), scan)
        common_card = model.estimate(common).cardinality
        rare_card = model.estimate(rare).cardinality
        assert common_card > 800
        assert rare_card < 50

    def test_histogram_prices_range_predicates(self):
        database = skewed_database(n=1000)
        database.analyze()
        model = CostModel(database.schema, database)
        from repro.physical.plans import ClassScan, Filter
        from repro.vql.parser import parse_expression
        scan = ClassScan("r", "Reading")
        narrow = Filter(parse_expression("r.score >= 9900"), scan)
        wide = Filter(parse_expression("r.score >= 100"), scan)
        assert model.estimate(narrow).cardinality < 50
        assert model.estimate(wide).cardinality > 900

    def test_skew_flips_the_chosen_access_path(self):
        database = skewed_database(n=2000)
        database.create_hash_index("Reading", "category")
        database.create_sorted_index("Reading", "score")
        session = open_session(database)
        query = ("ACCESS r FROM r IN Reading "
                 "WHERE r.category == 'common' AND r.score >= 9900")
        flat_plan = session.optimize(query).best_plan
        database.analyze()
        informed_plan = session.optimize(query).best_plan

        def leaf(plan):
            node = plan
            while node.inputs():
                node = node.inputs()[0]
            return node.name

        assert leaf(flat_plan) == "index_eq_scan"
        assert leaf(informed_plan) == "index_range_scan"
        # differential: both plans agree on the result
        from repro.physical.executor import execute_plan
        assert ({r["r"] for r in execute_plan(flat_plan, database)}
                == {r["r"] for r in execute_plan(informed_plan, database)})

    def test_calibrated_method_cost_feeds_the_model(self):
        database = skewed_database(n=30, with_methods=True)
        model = CostModel(database.schema, database)
        annotated = model.method_cost("slow_score")
        database.analyze()
        measured = model.method_cost("slow_score")
        # the annotation said 1.0 (default); the measurement sees the sleep
        assert annotated == 1.0
        assert measured > 10.0
        assert model.method_cost("fast_score") < measured

    def test_stale_statistics_fall_back_to_defaults(self):
        database = skewed_database(n=100)
        database.analyze()
        model = CostModel(database.schema, database)
        from repro.physical.plans import ClassScan, Filter
        from repro.vql.parser import parse_expression
        plan = Filter(parse_expression("r.category == 'common'"),
                      ClassScan("r", "Reading"))
        informed = model.estimate(plan).cardinality
        for i in range(60):
            database.create("Reading", category="shift", score=i)
        fallback_model = CostModel(database.schema, database)
        stale = fallback_model.estimate(plan).cardinality
        assert informed > 80
        # back on the flat default: extension(160) * EQUALITY_SELECTIVITY
        assert stale == pytest.approx(160 * CostModel.EQUALITY_SELECTIVITY)


# ----------------------------------------------------------------------
# deprecation of the legacy per-kind index DDL aliases
# ----------------------------------------------------------------------
class TestLegacyIndexDdlDeprecation:
    def test_service_aliases_warn_but_work(self):
        database = skewed_database(n=10)
        from repro import open_service
        service = open_service(database)
        with pytest.deprecated_call():
            service.create_hash_index("Reading", "category")
        with pytest.deprecated_call():
            service.create_sorted_index("Reading", "score")
        assert database.indexes.get("Reading", "category") is not None
        assert database.indexes.get("Reading", "score") is not None
        with pytest.deprecated_call():
            service.create_text_index("Reading", "note")
        with pytest.deprecated_call():
            service.drop_text_index("Reading", "note")

    def test_generic_entry_point_does_not_warn(self, recwarn):
        database = skewed_database(n=10)
        from repro import open_service
        service = open_service(database)
        service.create_index("Reading", "category", kind="hash")
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
