"""Methods as join predicates — the paper's Example 1.

The query

    ACCESS [pn: p.number, qn: q.number]
    FROM p IN Paragraph, q IN Paragraph
    WHERE p->sameDocument(q)

uses the parametrized method ``sameDocument`` as a join predicate.  Without
semantic knowledge the only available plan is a nested-loop join that invokes
the method for every pair of paragraphs.  The condition equivalence

    p->sameDocument(q)  ⇔  p->document() == q->document()

(plus the E1 path equivalence) lets the optimizer turn the predicate into an
attribute equi-join and use a hash join.

Run with:  python examples/method_join.py
"""

from __future__ import annotations

import time

from repro import Session
from repro.physical.plans import HashJoin, NestedLoopJoin, walk_physical
from repro.workloads import (
    document_knowledge,
    generate_document_database,
    same_document_join_query,
)


def describe_join(plan) -> str:
    for node in walk_physical(plan):
        if isinstance(node, HashJoin):
            return f"hash join on {node.left_key} == {node.right_key}"
        if isinstance(node, NestedLoopJoin):
            return f"nested-loop join on {node.condition}"
    return "no join operator"


def main() -> None:
    database = generate_document_database(n_documents=10)
    session = Session(database, knowledge=document_knowledge(database.schema))
    query = same_document_join_query().text
    paragraphs = database.extension_size("Paragraph")
    print(f"{paragraphs} paragraphs -> {paragraphs * paragraphs} candidate pairs")
    print()

    started = time.perf_counter()
    naive = session.execute_naive(query)
    naive_seconds = time.perf_counter() - started

    started = time.perf_counter()
    optimized = session.execute(query)
    optimized_seconds = time.perf_counter() - started

    assert naive.value_set() == optimized.value_set()

    print(f"naive plan     : {describe_join(naive.physical_plan)}")
    print(f"  rows={len(naive)}  method calls={naive.work['method_calls']:.0f}  "
          f"time={naive_seconds:.2f}s")
    print(f"optimized plan : {describe_join(optimized.physical_plan)}")
    print(f"  rows={len(optimized)}  method calls={optimized.work['method_calls']:.0f}  "
          f"time={optimized_seconds:.2f}s")
    print()
    ratio = naive.work["method_calls"] / max(optimized.work["method_calls"], 1.0)
    print(f"method invocations reduced by a factor of {ratio:.0f} "
          f"(quadratic -> linear in the number of paragraphs)")


if __name__ == "__main__":
    main()
