"""Document retrieval walkthrough — the paper's Section 2.3 example in full.

This example reproduces the transformation chain Q → Q' → … → PQ step by
step:

1. it prints the canonical algebra translation of the motivating query,
2. it shows the schema-specific rules derived from equivalences E1-E5,
3. it runs the optimizer and renders the optimization *trace* (the Section 7
   demonstrator), highlighting where each semantic rule fired,
4. it compares the final plan and its work against the naive evaluation and
   against a structural-only optimizer (no semantic knowledge).

Run with:  python examples/document_retrieval.py
"""

from __future__ import annotations

from repro import Session
from repro.algebra.printer import format_tree
from repro.workloads import (
    document_knowledge,
    generate_document_database,
    motivating_query,
)


def main() -> None:
    database = generate_document_database(n_documents=50)
    knowledge = document_knowledge(database.schema)
    query = motivating_query().text

    session = Session(database, knowledge=knowledge)
    structural = Session(database, knowledge=knowledge,
                         exclude_tags=("semantic",))

    print("=== 1. canonical algebra translation ===")
    translation = session.translate(query)
    print(format_tree(translation.plan))
    print()

    print("=== 2. schema-specific rules derived from the knowledge ===")
    for rule_name in session.optimizer.rule_set.rule_names():
        if not rule_name.startswith("impl-") and "E" in rule_name or \
                "inverse-link" in rule_name or "I1" in rule_name or "J1" in rule_name:
            print(" ", rule_name)
    print()

    print("=== 3. optimization trace (the demonstrator) ===")
    optimization = session.optimize(query)
    semantic_events = [event for event in optimization.trace.events
                       if "E" in event.rule or "inverse-link" in event.rule]
    for event in semantic_events[:12]:
        print(" ", event)
    print(f"  ... {len(optimization.trace)} events in total, "
          f"{optimization.statistics.logical_plans_explored} logical plans explored")
    print()

    print("=== 4. plans and work ===")
    naive = session.execute_naive(query)
    semantic = session.execute(query)
    structural_result = structural.execute(query)

    for label, result in [("naive", naive),
                          ("structural optimizer", structural_result),
                          ("semantic optimizer", semantic)]:
        print(f"{label:22s}: rows={len(result):3d}  "
              f"external calls={result.work['external_method_calls']:6.0f}  "
              f"cost units={result.work['total_cost_units']:9.1f}")

    assert naive.value_set() == semantic.value_set() == structural_result.value_set()
    print()
    print("final physical plan (the paper's PQ):")
    print(semantic.optimization.explain())


if __name__ == "__main__":
    main()
