"""Bring your own schema — the optimizer generator on a second application.

The paper's point is that the optimizer is *generated* per schema from
declarative knowledge, not hand-written for one application.  This example
uses the bundled university schema (departments, students, courses) to show
the full workflow a downstream user follows:

1. define classes, properties, methods and inverse links,
2. state the semantic knowledge (a path-method equivalence, inverse links,
   a precomputed-set implication, a query↔method equivalence),
3. generate the optimizer and run queries.

Run with:  python examples/custom_schema.py
"""

from __future__ import annotations

from repro import Session
from repro.workloads.university import (
    generate_university_database,
    university_knowledge,
)


QUERIES = {
    "department lookup (query<->method equivalence U3)":
        "ACCESS d FROM d IN Department WHERE d.name == 'Department of Databases 0'",
    "students of a department by name (path method U1 + inverse links)":
        "ACCESS s FROM s IN Student "
        "WHERE s->departmentName() == 'Department of Databases 0'",
    "honours students (precomputed-set implication U2)":
        "ACCESS s FROM s IN Student WHERE s.gpa >= 3.5",
    "students and their course titles (dependent range)":
        "ACCESS [student: s.name, course: c.title] "
        "FROM s IN Student, c IN s.courses WHERE c.credits >= 6",
}


def main() -> None:
    database = generate_university_database(n_departments=6,
                                            students_per_department=50)
    knowledge = university_knowledge(database.schema)
    session = Session(database, knowledge=knowledge)
    print(f"database: {database}")
    print(knowledge.describe())
    print()

    for label, query in QUERIES.items():
        naive = session.execute_naive(query)
        optimized = session.execute(query)
        assert naive.value_set() == optimized.value_set()
        def work(result) -> str:
            return (f"cost={result.work['total_cost_units']:7.1f} "
                    f"method calls={result.work['method_calls']:5.0f} "
                    f"property reads={result.work['property_reads']:6.0f}")

        print(f"--- {label}")
        print(f"    {query}")
        print(f"    rows={len(optimized)}")
        print(f"    naive     {work(naive)}")
        print(f"    optimized {work(optimized)}  (plans explored: "
              f"{optimized.optimization.statistics.logical_plans_explored})")
        print()


if __name__ == "__main__":
    main()
