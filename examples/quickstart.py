"""Quickstart: the unified statement API on a synthetic document DB.

Builds a small document database (the paper's Document/Section/Paragraph
schema), registers the schema-specific semantic knowledge (equivalences
E1-E5), opens a ``connect()`` connection and runs the motivating query

    ACCESS p FROM p IN Paragraph
    WHERE p->contains_string('Implementation')
    AND (p->document()).title == 'Query Optimization'

through a streaming cursor, then exercises the write side of the language
(``INSERT``/``UPDATE``/``DELETE`` and index DDL, all planned through the
same optimizer as the reads) and the statistics side: ``ANALYZE`` to feed
the cost model measured histograms and method timings, and ``EXPLAIN
ANALYZE`` to compare its estimates against per-operator actuals.

To see which access path the optimizer chose, read the ``physical plan:``
section of ``connection.explain(statement)`` (printed below) — its leaf
names the access path, e.g. ``expr_set_scan<...>`` for the paper's
bulk-method plan PQ, or ``index_eq_scan<d, Document.title == '...'>`` when
an equality filter is answered directly from a registered index.  The same
works for mutations: ``explain`` of an ``UPDATE ... WHERE`` shows the plan
of the derived WHERE-query (see DESIGN.md, "Statement API").

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import connect, open_session
from repro.workloads import (
    document_knowledge,
    generate_document_database,
    motivating_query,
)


def main() -> None:
    database = generate_document_database(n_documents=50)
    print(f"database: {database}")
    print(database.schema.describe())
    print()

    knowledge = document_knowledge(database.schema)
    print(knowledge.describe())
    print()

    connection = connect(database, knowledge=knowledge)
    query = motivating_query().text
    print("query:")
    print(" ", query)
    print()

    # The streaming cursor pulls rows lazily from the compiled plan.
    cursor = connection.execute(query)
    paragraphs = cursor.fetchall()
    print(f"optimized evaluation: {len(paragraphs)} paragraphs "
          f"(first: {paragraphs[0] if paragraphs else None})")

    # The naive baseline (the paper's "straightforward evaluation") is
    # still available through a session; compare the logical work.
    session = open_session(database, knowledge=knowledge)
    naive = session.execute_naive(query)
    optimized = session.execute(query)
    assert naive.value_set() == optimized.value_set()
    speedup = naive.work["total_cost_units"] / max(
        optimized.work["total_cost_units"], 1e-9)
    print(f"naive evaluation: {naive.work['total_cost_units']:.1f} cost "
          f"units; optimized: {optimized.work['total_cost_units']:.1f} "
          f"({speedup:.1f}x in logical work)")
    print()

    print("chosen physical plan (compare with the paper's plan PQ):")
    print(connection.explain(query))
    print()

    # ------------------------------------------------------------------
    # the write side: DML + DDL through the same language
    # ------------------------------------------------------------------
    inserted = connection.execute(
        "INSERT INTO Document (title, author) VALUES (:t, :a)",
        {"t": "Statement API", "a": "quickstart"})
    print(f"INSERT created {inserted.lastoid}")

    # Batched inserts share one analyzed statement and one bulk
    # maintenance pass (this is EXP-11's fast path).
    cursor = connection.cursor()
    cursor.executemany(
        "INSERT INTO Document (title, author) VALUES (?, ?)",
        [[f"bulk document {i}", "quickstart"] for i in range(100)])
    print(f"executemany inserted {cursor.rowcount} documents")

    # UPDATE ... WHERE is planned through the optimizer: with a hash index
    # on Document.title the targets come from an index_eq_scan, not a scan.
    connection.execute("CREATE INDEX ON Document(author)")
    print()
    print("explain of an indexed UPDATE (note the index_eq_scan leaf):")
    print(connection.explain(
        "UPDATE Document d SET author = 'renamed' WHERE d.author == 'quickstart'"))
    updated = connection.execute(
        "UPDATE Document d SET author = 'renamed' "
        "WHERE d.author == 'quickstart'")
    print(f"UPDATE touched {updated.rowcount} documents")

    deleted = connection.execute(
        "DELETE FROM Document d WHERE d.author == 'renamed'")
    print(f"DELETE removed {deleted.rowcount} documents")
    print()

    # ------------------------------------------------------------------
    # statistics: ANALYZE + EXPLAIN ANALYZE
    # ------------------------------------------------------------------
    # Without statistics the cost model guesses flat selectivities.
    # ANALYZE measures the data (histograms, distinct counts, most-common
    # values, timed method costs) and evicts cached plans so the next
    # execution re-optimizes against real numbers.
    analyzed = connection.execute("ANALYZE")
    print(f"ANALYZE refreshed {analyzed.rowcount} classes:")
    print(analyzed.statement_report)
    print()

    # EXPLAIN ANALYZE executes the plan under per-operator instrumentation
    # and reports estimated vs actual cardinalities — after ANALYZE the
    # estimates should track the actuals closely.
    print("EXPLAIN ANALYZE of an indexed equality query:")
    print(connection.explain(
        "ACCESS p FROM p IN Paragraph WHERE p.number == 3", analyze=True))
    print()

    # Serving the same query shape repeatedly: the connection's service
    # optimizes and compiles the parametrized shape once, then binds
    # values per request.
    parametrized = ("ACCESS p FROM p IN Paragraph "
                    "WHERE p->contains_string(:term) AND "
                    "(p->document()).title == :title")
    bindings = {"term": "Implementation", "title": "Query Optimization"}
    first = connection.service.execute(parametrized, bindings)
    second = connection.service.execute(parametrized, bindings)
    print("prepared service: first call "
          f"({'hit' if first.metrics.cache_hit else 'miss'}) "
          f"{first.metrics.total_seconds * 1000:.1f}ms, second call "
          f"({'hit' if second.metrics.cache_hit else 'miss'}) "
          f"{second.metrics.total_seconds * 1000:.2f}ms "
          f"for {len(second)} paragraphs")


if __name__ == "__main__":
    main()
