"""Quickstart: run the paper's motivating query on a synthetic document DB.

Builds a small document database (the paper's Document/Section/Paragraph
schema), registers the schema-specific semantic knowledge (equivalences
E1-E5), and runs the motivating query

    ACCESS p FROM p IN Paragraph
    WHERE p->contains_string('Implementation')
    AND (p->document()).title == 'Query Optimization'

first naively and then through the semantic optimizer, printing the chosen
plan and the work both evaluations performed.

To see which access path the optimizer chose, read the ``physical plan:``
section of ``session.explain(query)`` (printed below) — its leaf names the
access path, e.g. ``expr_set_scan<...>`` for the paper's bulk-method plan
PQ, or ``index_eq_scan<d, Document.title == '...'>`` when an equality
filter is answered directly from a registered index.  Programmatically the
same information is available from ``OptimizationResult.explain()`` or by
walking ``result.optimization.best_plan`` (see DESIGN.md).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import open_session
from repro.workloads import (
    document_knowledge,
    generate_document_database,
    motivating_query,
)


def main() -> None:
    database = generate_document_database(n_documents=50)
    print(f"database: {database}")
    print(database.schema.describe())
    print()

    knowledge = document_knowledge(database.schema)
    print(knowledge.describe())
    print()

    session = open_session(database, knowledge=knowledge)
    query = motivating_query().text
    print("query:")
    print(" ", query)
    print()

    naive = session.execute_naive(query)
    print(f"naive evaluation: {len(naive)} paragraphs, "
          f"{naive.work['external_method_calls']:.0f} external method calls, "
          f"{naive.work['total_cost_units']:.1f} cost units")

    optimized = session.execute(query)
    print(f"optimized evaluation: {len(optimized)} paragraphs, "
          f"{optimized.work['external_method_calls']:.0f} external method calls, "
          f"{optimized.work['total_cost_units']:.1f} cost units")
    assert naive.value_set() == optimized.value_set()

    speedup = naive.work["total_cost_units"] / max(
        optimized.work["total_cost_units"], 1e-9)
    print(f"speedup: {speedup:.1f}x in logical work")
    print()

    print("chosen physical plan (compare with the paper's plan PQ):")
    print(session.explain(query))
    print()

    # Serving the same query shape repeatedly: the QueryService optimizes and
    # compiles the parametrized shape once, then binds values per request.
    from repro import open_service
    service = open_service(database, knowledge=knowledge)
    parametrized = ("ACCESS p FROM p IN Paragraph "
                    "WHERE p->contains_string(:term) AND "
                    "(p->document()).title == :title")
    first = service.execute(parametrized, {"term": "Implementation",
                                           "title": "Query Optimization"})
    second = service.execute(parametrized, {"term": "Implementation",
                                            "title": "Query Optimization"})
    print("prepared service: first call "
          f"({'hit' if first.metrics.cache_hit else 'miss'}) "
          f"{first.metrics.total_seconds * 1000:.1f}ms, second call "
          f"({'hit' if second.metrics.cache_hit else 'miss'}) "
          f"{second.metrics.total_seconds * 1000:.2f}ms "
          f"for {len(second)} paragraphs")


if __name__ == "__main__":
    main()
